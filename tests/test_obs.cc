/**
 * @file
 * Observability-layer tests (src/obs/): the Chrome-trace recorder
 * (enable/disable contract, ring overwrite, per-thread tracks), phase
 * nesting of the controller's instrumentation through the single-shard
 * and sharded stacks, access-id correlation from submit to completion,
 * the metrics exporter (JSON, Prometheus, periodic dumps), and
 * concurrent recording while an exporter snapshots (the TSan job runs
 * every Obs* suite).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

using obs::TraceEvent;
using obs::TraceRecorder;

/** Tear the global recorder back down after each test (the recorder is
 *  a process-wide singleton shared across the whole binary). */
struct RecorderGuard
{
    ~RecorderGuard()
    {
        TraceRecorder::instance().disable();
        TraceRecorder::instance().clear();
    }
};

SystemConfig
obsConfig(DesignKind design = DesignKind::PsOram)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 6;
    config.num_blocks = 120;
    config.stash_capacity = 64;
    config.seed = 23;
    return config;
}

std::vector<TraceEvent>
eventsNamed(const std::vector<TraceEvent> &events, const char *name)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &event : events)
        if (std::string(event.name) == name)
            out.push_back(event);
    return out;
}

TEST(ObsTrace, DisabledSitesRecordNothing)
{
    RecorderGuard guard;
    TraceRecorder::instance().disable();
    TraceRecorder::instance().clear();

    PSORAM_TRACE_INSTANT("test", "ghost", 1);
    {
        PSORAM_TRACE_SCOPE("test", "ghost_scope", 2);
    }
    EXPECT_TRUE(TraceRecorder::instance().snapshot().empty());
    EXPECT_FALSE(TraceRecorder::enabled());
}

TEST(ObsTrace, RecordsInstantAndCompleteEvents)
{
    RecorderGuard guard;
    TraceRecorder::instance().enable();

    {
        PSORAM_TRACE_SCOPE("test", "outer", 7);
        PSORAM_TRACE_INSTANT_ARG("test", "marker", 7, "value", 42);
    }

    const auto events = TraceRecorder::instance().snapshot();
    const auto outers = eventsNamed(events, "outer");
    const auto markers = eventsNamed(events, "marker");
    ASSERT_EQ(outers.size(), 1u);
    ASSERT_EQ(markers.size(), 1u);
    EXPECT_EQ(outers[0].phase, 'X');
    EXPECT_EQ(outers[0].id, 7u);
    EXPECT_EQ(markers[0].phase, 'i');
    EXPECT_STREQ(markers[0].arg_name, "value");
    EXPECT_EQ(markers[0].arg, 42);
    // The instant fired inside the scope's window.
    EXPECT_GE(markers[0].ts_ns, outers[0].ts_ns);
    EXPECT_LE(markers[0].ts_ns, outers[0].ts_ns + outers[0].dur_ns);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops)
{
    RecorderGuard guard;
    TraceRecorder::instance().enable(16);

    for (int i = 0; i < 100; ++i)
        PSORAM_TRACE_INSTANT_ARG("test", "tick", 0, "i", i);

    const auto events = TraceRecorder::instance().snapshot();
    EXPECT_EQ(events.size(), 16u);
    EXPECT_EQ(TraceRecorder::instance().droppedEvents(), 84u);
    // The survivors are the *latest* 84..99 (oldest overwritten).
    for (const TraceEvent &event : events)
        EXPECT_GE(event.arg, 84);
}

TEST(ObsTrace, SingleShardPhaseEventsNestWithinTheirAccess)
{
    RecorderGuard guard;
    TraceRecorder::instance().enable();

    System system = buildSystem(obsConfig());
    OramEngine engine(*system.controller);
    for (BlockAddr addr = 0; addr < 60; ++addr) {
        std::uint8_t buf[kBlockDataBytes] = {
            static_cast<std::uint8_t>(addr)};
        engine.submitWrite(addr, buf);
    }
    engine.drain();

    const auto events = TraceRecorder::instance().snapshot();
    const auto accesses = eventsNamed(events, "access");
    ASSERT_FALSE(accesses.empty());

    // Every phase event sits inside the access event that carries the
    // same correlation id, on the same track.
    const char *const phase_names[] = {"remap", "load", "backup",
                                       "evict", "drain"};
    std::size_t phase_events = 0;
    for (const char *name : phase_names) {
        for (const TraceEvent &phase : eventsNamed(events, name)) {
            ++phase_events;
            bool contained = false;
            for (const TraceEvent &access : accesses) {
                if (access.id != phase.id || access.tid != phase.tid)
                    continue;
                if (phase.ts_ns >= access.ts_ns &&
                    phase.ts_ns + phase.dur_ns <=
                        access.ts_ns + access.dur_ns) {
                    contained = true;
                    break;
                }
            }
            EXPECT_TRUE(contained)
                << name << " event (id " << phase.id
                << ") not nested in its access";
        }
    }
    // The full path ran remap/load/backup/evict for every access.
    EXPECT_GE(phase_events, accesses.size() * 4);

    // Engine-side correlation: every access id also has submit and
    // complete markers.
    std::set<std::uint64_t> submit_ids;
    for (const TraceEvent &s : eventsNamed(events, "submit_write"))
        submit_ids.insert(s.id);
    std::set<std::uint64_t> complete_ids;
    for (const TraceEvent &c : eventsNamed(events, "complete"))
        complete_ids.insert(c.id);
    for (const TraceEvent &access : accesses) {
        EXPECT_TRUE(submit_ids.count(access.id));
        EXPECT_TRUE(complete_ids.count(access.id));
    }
}

TEST(ObsTrace, WritesWellFormedChromeTraceJson)
{
    RecorderGuard guard;
    TraceRecorder::instance().enable();

    System system = buildSystem(obsConfig());
    std::uint8_t buf[kBlockDataBytes] = {};
    for (BlockAddr addr = 0; addr < 8; ++addr)
        system.controller->write(addr, buf);

    const std::string path = "trace_obs_test.json";
    ASSERT_TRUE(TraceRecorder::instance().writeTo(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    std::remove(path.c_str());

    // Structural spot checks (CI additionally runs a real JSON parse
    // over the perf-smoke artifact).
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"access\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);
    EXPECT_EQ(json.find("\n]}"), json.size() - 4);
    // Balanced braces — cheap well-formedness proxy.
    long depth = 0;
    for (const char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ObsTraceSharded, WorkersGetDistinctNamedTracksAndIdsCorrelate)
{
    RecorderGuard guard;
    TraceRecorder::instance().enable();

    ShardedSystemConfig config;
    config.base = obsConfig();
    config.sharding.num_shards = 4;
    ShardedSystem sharded = buildShardedSystem(config);

    std::set<std::uint64_t> submitted;
    {
        ShardedOramEngine engine(sharded);
        std::uint8_t buf[kBlockDataBytes] = {};
        for (BlockAddr addr = 0; addr < 80; ++addr)
            submitted.insert(engine.submitWrite(addr, buf));
        engine.drain();
    } // join workers so all buffers are quiescent

    // One named track per shard worker plus the completion drain.
    // (>=: when the whole binary runs in one process, earlier tests'
    // dead worker threads leave their named buffers registered too.)
    std::set<std::string> names;
    std::set<std::uint32_t> worker_tids;
    for (const auto &[tid, name] : TraceRecorder::instance().threadNames()) {
        names.insert(name);
        if (name.rfind("shard", 0) == 0) {
            EXPECT_TRUE(worker_tids.insert(tid).second)
                << "duplicate tid for " << name;
        }
    }
    for (unsigned k = 0; k < 4; ++k)
        EXPECT_TRUE(names.count("shard" + std::to_string(k) + ".worker"));
    EXPECT_TRUE(names.count("completions.drain"));
    EXPECT_GE(worker_tids.size(), 4u);

    const auto events = TraceRecorder::instance().snapshot();

    // Submit markers carry the caller's ids; the matching access events
    // run on a *worker* track with the same (forced) id.
    std::set<std::uint64_t> submit_ids;
    std::uint32_t submit_tid = 0;
    for (const TraceEvent &s : eventsNamed(events, "submit_write")) {
        submit_ids.insert(s.id);
        submit_tid = s.tid;
    }
    EXPECT_EQ(submit_ids, submitted);

    std::set<std::uint64_t> access_ids;
    for (const TraceEvent &access : eventsNamed(events, "access")) {
        EXPECT_TRUE(submitted.count(access.id))
            << "access id " << access.id << " never submitted";
        EXPECT_TRUE(worker_tids.count(access.tid))
            << "access ran off the worker tracks";
        EXPECT_NE(access.tid, submit_tid);
        access_ids.insert(access.id);
    }
    EXPECT_FALSE(access_ids.empty());
}

TEST(ObsTraceSharded, ConcurrentRecordingWhileExporterSnapshots)
{
    RecorderGuard guard;
    TraceRecorder::instance().enable(1024);

    // Stats mutated by the recorders, snapshotted by the exporter.
    Counter ticks;
    Distribution latencies;
    StatGroup group("concurrent");
    group.addCounter("ticks", &ticks, "events emitted");
    group.addDistribution("latency", &latencies, "synthetic latency");
    obs::MetricsExporter exporter;
    exporter.addGroup(&group);

    // 4 "shard" threads record + sample while the main thread snapshots
    // the trace and serializes metrics. TSan must see no race.
    std::atomic<bool> stop{false};
    std::vector<std::thread> shards;
    for (unsigned k = 0; k < 4; ++k) {
        shards.emplace_back([k, &stop, &ticks, &latencies] {
            TraceRecorder::setThreadName("conc" + std::to_string(k) +
                                         ".recorder");
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                PSORAM_TRACE_SCOPE("test", "work", ++i);
                PSORAM_TRACE_INSTANT("test", "tick", i);
                ++ticks;
                latencies.sample(static_cast<double>(i % 97));
            }
        });
    }

    // Keep snapshotting until the recorders have demonstrably run a
    // while (50 rounds alone can finish before the threads schedule).
    for (int round = 0; round < 50 || ticks.value() < 1000; ++round) {
        const auto events = TraceRecorder::instance().snapshot();
        for (const TraceEvent &event : events)
            ASSERT_NE(event.name, nullptr);
        std::ostringstream json;
        exporter.writeJson(json);
        EXPECT_NE(json.str().find("\"ticks\""), std::string::npos);
        (void)TraceRecorder::instance().droppedEvents();
        std::this_thread::yield();
    }

    stop.store(true);
    for (std::thread &t : shards)
        t.join();

    EXPECT_GT(ticks.value(), 0u);
    EXPECT_GE(TraceRecorder::instance().threadNames().size(), 4u);
}

TEST(ObsMetrics, JsonSnapshotCoversCountersAndDistributions)
{
    Counter hits;
    ++hits;
    ++hits;
    Distribution lat;
    lat.sample(2.0);
    lat.sample(4.0);
    StatGroup group("demo");
    group.addCounter("hits", &hits, "hit count");
    group.addDistribution("lat", &lat, "latency");

    obs::MetricsExporter exporter;
    exporter.addGroup(&group);
    EXPECT_EQ(exporter.numGroups(), 1u);
    exporter.addGroup(&group); // idempotent
    EXPECT_EQ(exporter.numGroups(), 1u);

    std::ostringstream out;
    exporter.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"name\": \"demo\""), std::string::npos);
    EXPECT_NE(json.find("\"hits\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"sum\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"mean\": 3"), std::string::npos);
}

TEST(ObsMetrics, PrometheusTextSelectedByExtension)
{
    Counter ops;
    ops += 5;
    Distribution d;
    d.sample(1.5);
    StatGroup group("engine.shard0");
    group.addCounter("ops", &ops, "operations");
    group.addDistribution("wait", &d, "wait time");

    obs::MetricsExporter exporter;
    exporter.addGroup(&group);

    std::ostringstream out;
    exporter.writePrometheus(out);
    const std::string text = out.str();
    // Group names are sanitized into the metric-name charset.
    EXPECT_NE(text.find("# TYPE psoram_engine_shard0_ops counter"),
              std::string::npos);
    EXPECT_NE(text.find("psoram_engine_shard0_ops 5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE psoram_engine_shard0_wait summary"),
              std::string::npos);
    EXPECT_NE(text.find("psoram_engine_shard0_wait_count 1"),
              std::string::npos);

    const std::string path = "metrics_obs_test.prom";
    ASSERT_TRUE(exporter.writeTo(path));
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), text);
    std::remove(path.c_str());
}

TEST(ObsMetrics, PeriodicDumpKeepsWritingUntilStopped)
{
    Counter beats;
    StatGroup group("periodic");
    group.addCounter("beats", &beats, "heartbeats");

    const std::string path = "metrics_obs_periodic.json";
    {
        obs::MetricsExporter exporter;
        exporter.addGroup(&group);
        exporter.startPeriodic(path, std::chrono::milliseconds(5));
        ++beats;
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        exporter.stopPeriodic();
    } // destructor also stops cleanly when already stopped

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("\"beats\": 1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ObsStats, CounterCopyIsATearFreeSnapshot)
{
    Counter live;
    live += 41;
    ++live;
    Counter copy(live);
    EXPECT_EQ(copy.value(), 42u);
    ++live; // the copy is detached
    EXPECT_EQ(copy.value(), 42u);
    EXPECT_EQ(live.value(), 43u);

    copy = live; // assignment replaces, never merges
    EXPECT_EQ(copy.value(), 43u);
}

TEST(ObsStats, StatGroupSnapshotIsConsistent)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(10.0);
    d.sample(20.0);
    StatGroup group("snap");
    group.addCounter("c", &c, "counter");
    group.addDistribution("d", &d, "dist");

    const StatGroup::Snapshot snap = group.snapshot();
    EXPECT_EQ(snap.name, "snap");
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 3u);
    ASSERT_EQ(snap.dists.size(), 1u);
    EXPECT_EQ(snap.dists[0].stats.count, 2u);
    EXPECT_DOUBLE_EQ(snap.dists[0].stats.sum, 30.0);
    EXPECT_DOUBLE_EQ(snap.dists[0].stats.mean(), 15.0);
}

} // namespace
} // namespace psoram
