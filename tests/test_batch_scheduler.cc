/**
 * @file
 * BatchScheduler tests: read dedup (one physical access fans out the
 * same value to every waiter), read-after-write forwarding (a read of
 * a key with an in-flight write completes inline with the pending
 * payload), multi-key batch joins (values delivered in key order, with
 * intra-batch dedup), drain semantics, and the config switches that
 * disable each optimization.
 *
 * The engine runs real worker threads, so "concurrent" is made
 * deterministic by queueing filler requests on the target shard first:
 * per-shard FIFO order guarantees the leader (or pending write) is
 * still in flight when the duplicates arrive.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/batch_scheduler.hh"
#include "sim/sharded_system.hh"

namespace psoram::serve {
namespace {

ShardedSystemConfig
shardedConfig(unsigned shards)
{
    ShardedSystemConfig config;
    config.base.design = DesignKind::PsOram;
    config.base.tree_height = 6;
    config.base.num_blocks = 120;
    config.base.stash_capacity = 64;
    config.base.seed = 23;
    config.sharding.num_shards = shards;
    config.sharding.policy = ShardPolicy::Interleave;
    return config;
}

std::array<std::uint8_t, kBlockDataBytes>
payload(BlockAddr addr, std::uint8_t salt)
{
    std::array<std::uint8_t, kBlockDataBytes> data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(addr * 37 + salt + i);
    return data;
}

/** Queue @p count reads of addresses on the same shard as @p target so
 *  later submissions to that shard sit behind them in FIFO order. */
void
stallShardOf(BatchScheduler &scheduler, const ShardRouter &router,
             BlockAddr target, unsigned count, BlockAddr total_blocks)
{
    const unsigned shard = router.route(target).shard;
    unsigned queued = 0;
    for (BlockAddr addr = 0; addr < total_blocks && queued < count;
         ++addr) {
        if (addr == target || router.route(addr).shard != shard)
            continue;
        scheduler.submitRead(addr, nullptr);
        ++queued;
    }
    ASSERT_EQ(queued, count) << "not enough same-shard filler keys";
}

TEST(BatchScheduler, DedupFansOneAccessOutToAllWaiters)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardRouter router(system.config.sharding,
                       system.config.base.num_blocks);
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    constexpr BlockAddr kKey = 42;
    scheduler.submitWrite(kKey, payload(kKey, 5).data());
    scheduler.drain();
    const std::uint64_t physical_before =
        engine.stats().physical_accesses;

    // Park the leader behind filler so the 8 duplicates attach while
    // it is still in flight.
    stallShardOf(scheduler, router, kKey, 16,
                 system.config.base.num_blocks);

    std::mutex mutex;
    std::vector<BatchScheduler::Result> results;
    constexpr int kReaders = 9; // 1 leader + 8 waiters
    for (int i = 0; i < kReaders; ++i)
        scheduler.submitRead(kKey,
                             [&](const BatchScheduler::Result &result) {
                                 std::lock_guard<std::mutex> lock(mutex);
                                 results.push_back(result);
                             });
    scheduler.drain();

    ASSERT_EQ(results.size(), static_cast<std::size_t>(kReaders));
    for (const auto &result : results) {
        EXPECT_EQ(result.addr, kKey);
        EXPECT_FALSE(result.is_write);
        EXPECT_EQ(result.data, payload(kKey, 5))
            << "waiter observed a different value than the leader";
    }
    int coalesced = 0;
    for (const auto &result : results)
        coalesced += result.coalesced;
    EXPECT_EQ(coalesced, kReaders - 1);

    EXPECT_EQ(scheduler.stats().deduped_reads.value(),
              static_cast<std::uint64_t>(kReaders - 1));
    // 16 filler + 1 leader reach the engine; the 8 waiters never do.
    EXPECT_EQ(scheduler.stats().engine_reads.value(), 17u);
    EXPECT_EQ(engine.stats().physical_accesses - physical_before, 17u)
        << "waiters must not cost physical ORAM accesses";
}

TEST(BatchScheduler, ReadAfterWriteForwardsPendingPayloadInline)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardRouter router(system.config.sharding,
                       system.config.base.num_blocks);
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    constexpr BlockAddr kKey = 7;
    stallShardOf(scheduler, router, kKey, 16,
                 system.config.base.num_blocks);
    scheduler.submitWrite(kKey, payload(kKey, 9).data());

    // The write is parked behind the filler, so the read must be
    // served from the pending payload, inline on this thread.
    std::atomic<bool> fired{false};
    const std::thread::id submitter = std::this_thread::get_id();
    scheduler.submitRead(kKey,
                         [&](const BatchScheduler::Result &result) {
                             EXPECT_EQ(result.addr, kKey);
                             EXPECT_TRUE(result.coalesced);
                             EXPECT_EQ(result.data, payload(kKey, 9));
                             EXPECT_EQ(std::this_thread::get_id(),
                                       submitter);
                             fired.store(true);
                         });
    EXPECT_TRUE(fired.load())
        << "forwarded read must complete before submitRead returns";
    EXPECT_EQ(scheduler.stats().forwarded_reads.value(), 1u);
    scheduler.drain();

    // After the write lands, a fresh read observes the same value via
    // the normal engine path.
    std::array<std::uint8_t, kBlockDataBytes> observed{};
    scheduler.submitRead(kKey,
                         [&](const BatchScheduler::Result &result) {
                             observed = result.data;
                         });
    scheduler.drain();
    EXPECT_EQ(observed, payload(kKey, 9));
}

TEST(BatchScheduler, LatestWriteWinsForForwarding)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardRouter router(system.config.sharding,
                       system.config.base.num_blocks);
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    constexpr BlockAddr kKey = 11;
    stallShardOf(scheduler, router, kKey, 16,
                 system.config.base.num_blocks);
    scheduler.submitWrite(kKey, payload(kKey, 1).data());
    scheduler.submitWrite(kKey, payload(kKey, 2).data());

    std::array<std::uint8_t, kBlockDataBytes> observed{};
    scheduler.submitRead(kKey,
                         [&](const BatchScheduler::Result &result) {
                             observed = result.data;
                         });
    EXPECT_EQ(observed, payload(kKey, 2))
        << "forwarding must serve the latest pending write";
    scheduler.drain();
}

TEST(BatchScheduler, BatchDeliversValuesInKeyOrder)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(3));
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    const std::vector<BlockAddr> keys = {30, 3, 77, 14, 59};
    for (const BlockAddr key : keys)
        scheduler.submitWrite(key, payload(key, 4).data());
    scheduler.drain();

    BatchScheduler::BatchResult observed;
    std::atomic<int> fired{0};
    scheduler.submitBatch(keys,
                          [&](const BatchScheduler::BatchResult &result) {
                              observed = result;
                              fired.fetch_add(1);
                          });
    scheduler.drain();

    EXPECT_EQ(fired.load(), 1) << "join must fire exactly once";
    ASSERT_EQ(observed.keys, keys);
    ASSERT_EQ(observed.values.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(observed.values[i], payload(keys[i], 4))
            << "slot " << i << " (key " << keys[i] << ")";
    EXPECT_EQ(scheduler.stats().batches.value(), 1u);
    EXPECT_EQ(scheduler.stats().batch_keys.value(), keys.size());
}

TEST(BatchScheduler, DuplicateKeysInsideBatchDedupe)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardRouter router(system.config.sharding,
                       system.config.base.num_blocks);
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    constexpr BlockAddr kHot = 21;
    scheduler.submitWrite(kHot, payload(kHot, 8).data());
    scheduler.submitWrite(22, payload(22, 8).data());
    scheduler.drain();

    stallShardOf(scheduler, router, kHot, 16,
                 system.config.base.num_blocks);
    const std::vector<BlockAddr> keys = {kHot, 22, kHot, kHot};
    BatchScheduler::BatchResult observed;
    scheduler.submitBatch(keys,
                          [&](const BatchScheduler::BatchResult &result) {
                              observed = result;
                          });
    scheduler.drain();

    ASSERT_EQ(observed.values.size(), 4u);
    EXPECT_EQ(observed.values[0], payload(kHot, 8));
    EXPECT_EQ(observed.values[1], payload(22, 8));
    EXPECT_EQ(observed.values[2], payload(kHot, 8));
    EXPECT_EQ(observed.values[3], payload(kHot, 8));
    EXPECT_EQ(observed.coalesced_keys, 2u)
        << "second and third kHot must attach to the first";
    EXPECT_EQ(scheduler.stats().deduped_reads.value(), 2u);
}

TEST(BatchScheduler, ConcurrentSubmittersSeeConsistentValues)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(4));
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    constexpr BlockAddr kBlocks = 100;
    for (BlockAddr addr = 0; addr < kBlocks; ++addr)
        scheduler.submitWrite(addr, payload(addr, 3).data());
    scheduler.drain();

    // 4 threads hammer overlapping hot keys; every read must observe
    // the (stable) written value regardless of dedup decisions.
    std::atomic<int> mismatches{0};
    std::atomic<int> completions{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 200; ++i) {
                const BlockAddr addr = (t * 7 + i) % 16; // hot subset
                scheduler.submitRead(
                    addr, [&, addr](const BatchScheduler::Result &r) {
                        if (r.data != payload(addr, 3))
                            mismatches.fetch_add(1);
                        completions.fetch_add(1);
                    });
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    scheduler.drain();

    EXPECT_EQ(completions.load(), 800);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(scheduler.stats().reads.value(), 800u);
    EXPECT_EQ(scheduler.stats().engine_reads.value() +
                  scheduler.stats().deduped_reads.value() +
                  scheduler.stats().forwarded_reads.value(),
              800u)
        << "every read is a leader, a waiter, or a forward";
}

TEST(BatchScheduler, DisabledOptimizationsFallThroughToEngine)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardRouter router(system.config.sharding,
                       system.config.base.num_blocks);
    ShardedOramEngine engine(system);
    BatchSchedulerConfig config;
    config.dedupe_reads = false;
    config.forward_writes = false;
    BatchScheduler scheduler(engine, config);

    constexpr BlockAddr kKey = 13;
    scheduler.submitWrite(kKey, payload(kKey, 6).data());
    scheduler.drain();

    stallShardOf(scheduler, router, kKey, 16,
                 system.config.base.num_blocks);
    std::atomic<int> completions{0};
    for (int i = 0; i < 4; ++i)
        scheduler.submitRead(kKey,
                             [&](const BatchScheduler::Result &result) {
                                 EXPECT_FALSE(result.coalesced);
                                 EXPECT_EQ(result.data,
                                           payload(kKey, 6));
                                 completions.fetch_add(1);
                             });
    scheduler.drain();

    EXPECT_EQ(completions.load(), 4);
    EXPECT_EQ(scheduler.stats().deduped_reads.value(), 0u);
    EXPECT_EQ(scheduler.stats().forwarded_reads.value(), 0u);
    EXPECT_EQ(scheduler.stats().engine_reads.value(), 20u);
}

TEST(BatchScheduler, StatsRegisterWithGroup)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardedOramEngine engine(system);
    BatchScheduler scheduler(engine);

    StatGroup group("scheduler");
    scheduler.registerStats(group);
    scheduler.submitRead(5, nullptr);
    scheduler.submitRead(5, nullptr);
    scheduler.drain();

    EXPECT_EQ(group.counterValue("reads"), 2u);
    EXPECT_EQ(group.counterValue("engine_reads") +
                  group.counterValue("deduped_reads"),
              2u);
}

} // namespace
} // namespace psoram::serve
