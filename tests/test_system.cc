/**
 * @file
 * System builder and experiment runner tests: NVM region layout
 * disjointness across designs, config override parsing, and end-to-end
 * workload smoke runs.
 */

#include <gtest/gtest.h>

#include "sim/designs.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
tinyConfig(DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 6;
    config.num_blocks = 200;
    config.stash_capacity = 64;
    config.seed = 3;
    return config;
}

TEST(SystemLayout, RegionsAreDisjoint)
{
    for (const DesignKind design : allDesigns()) {
        const PsOramParams params = systemParams(tinyConfig(design));
        struct Region
        {
            Addr base;
            std::uint64_t size;
        };
        std::vector<Region> regions;
        regions.push_back(
            {params.data_layout.base,
             params.data_layout.footprintBytes()});
        regions.push_back({params.posmap_region_base,
                           params.num_blocks * 4});
        if (params.design.recursive_posmap) {
            const TreeGeometry pom{params.pom_height, 4};
            regions.push_back({params.pom_tree_base,
                               pom.numSlots() * kSlotBytes});
            regions.push_back({params.shadow_data_base,
                               ShadowStashRegion::kHeaderBytes +
                                   2 * params.stash_capacity *
                                       kSlotBytes});
            regions.push_back({params.shadow_pom_base,
                               ShadowStashRegion::kHeaderBytes +
                                   2 * params.pom_stash_capacity *
                                       kSlotBytes});
        }
        regions.push_back({params.naive_scratch_base, 64});

        for (std::size_t i = 0; i < regions.size(); ++i) {
            for (std::size_t j = i + 1; j < regions.size(); ++j) {
                const bool overlap =
                    regions[i].base <
                        regions[j].base + regions[j].size &&
                    regions[j].base <
                        regions[i].base + regions[i].size;
                EXPECT_FALSE(overlap)
                    << designName(design) << " regions " << i
                    << " and " << j << " overlap";
            }
        }
    }
}

TEST(SystemLayout, DeviceCapacityCoversLayout)
{
    for (const DesignKind design : allDesigns()) {
        System system = buildSystem(tinyConfig(design));
        EXPECT_GT(system.device->capacity(),
                  system.params.naive_scratch_base);
    }
}

TEST(SystemLayout, NumBlocksDerivedFromUtilization)
{
    SystemConfig config = tinyConfig(DesignKind::PsOram);
    config.num_blocks = 0;
    const PsOramParams params = systemParams(config);
    EXPECT_EQ(params.num_blocks,
              params.data_layout.geometry.dataBlocks(0.5));
}

TEST(SystemRecovery, RebindHookReattachesObserversAfterRecovery)
{
    // Observers and crash policies hang off the controller object;
    // recoverController() replaces that object, so without the rebind
    // hook every registration is silently dropped.
    System system = buildSystem(tinyConfig(DesignKind::PsOram));

    std::uint64_t paths_seen = 0;
    int rebinds = 0;
    system.setRebindHook([&](PsOramController &ctrl) {
        ++rebinds;
        ctrl.setPathObserver([&](PathId) { ++paths_seen; });
    });
    system.rebind_hook(*system.controller); // initial attach

    std::uint8_t buf[kBlockDataBytes] = {};
    system.controller->write(1, buf);
    const std::uint64_t before = paths_seen;
    EXPECT_GT(before, 0u);

    system.recoverController();
    EXPECT_EQ(rebinds, 2);

    // The observer keeps firing on the recovered controller (the stash
    // was lost in the crash, so this read walks the tree again).
    system.controller->read(1, buf);
    EXPECT_GT(paths_seen, before);
}

TEST(SystemRecovery, WithoutRebindHookObserversAreDropped)
{
    System system = buildSystem(tinyConfig(DesignKind::PsOram));
    std::uint64_t paths_seen = 0;
    system.controller->setPathObserver([&](PathId) { ++paths_seen; });

    std::uint8_t buf[kBlockDataBytes] = {};
    system.controller->write(1, buf);
    const std::uint64_t before = paths_seen;

    system.recoverController();
    system.controller->read(1, buf);
    // Documents the trap the hook exists to close.
    EXPECT_EQ(paths_seen, before);
}

TEST(Designs, CatalogsMatchPaper)
{
    EXPECT_EQ(nonRecursiveDesigns().size(), 5u);
    EXPECT_EQ(recursiveDesigns().size(), 2u);
    EXPECT_EQ(allDesigns().size(), 7u);
    EXPECT_EQ(designName(DesignKind::PsOram), "PS-ORAM");
    EXPECT_EQ(designName(DesignKind::NaivePsOram), "Naive-PS-ORAM");
    EXPECT_EQ(designName(DesignKind::RcrBaseline), "Rcr-Baseline");
}

TEST(Designs, OptionsEncodeVariants)
{
    EXPECT_EQ(designOptions(DesignKind::Baseline).persist,
              PersistMode::None);
    EXPECT_EQ(designOptions(DesignKind::FullNvm).stash_tech,
              StashTech::PCM);
    EXPECT_EQ(designOptions(DesignKind::FullNvmStt).stash_tech,
              StashTech::STTRAM);
    EXPECT_EQ(designOptions(DesignKind::NaivePsOram).persist,
              PersistMode::NaiveAll);
    EXPECT_EQ(designOptions(DesignKind::PsOram).persist,
              PersistMode::DirtyOnly);
    EXPECT_TRUE(designOptions(DesignKind::RcrPsOram).recursive_posmap);
    EXPECT_FALSE(designOptions(DesignKind::PsOram).recursive_posmap);
}

TEST(Designs, ConfigOverridesApply)
{
    Config overrides;
    overrides.parseAssignment("height=10");
    overrides.parseAssignment("channels=4");
    overrides.parseAssignment("wpq=4");
    overrides.parseAssignment("cipher=aes");
    overrides.parseAssignment("tech=stt");
    const SystemConfig config =
        configFromOverrides(overrides, DesignKind::PsOram);
    EXPECT_EQ(config.tree_height, 10u);
    EXPECT_EQ(config.channels, 4u);
    EXPECT_EQ(config.wpq_entries, 4u);
    EXPECT_EQ(config.cipher, CipherKind::Aes128Ctr);
    EXPECT_EQ(config.main_tech, NvmTech::STTRAM);
}

/** Config large enough that the miss stream exceeds the L2 reach. */
SystemConfig
expConfig(DesignKind design, unsigned channels = 1)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 16; // ~260k logical blocks (16 MB >> L2)
    config.stash_capacity = 200;
    config.seed = 3;
    config.channels = channels;
    return config;
}

TEST(Experiment, WorkloadSmokeRunProducesSaneMetrics)
{
    SystemConfig config = expConfig(DesignKind::PsOram);
    GeneratorParams gen;
    gen.instructions = 50'000;
    const WorkloadSpec spec{"probe", 20.0, 0.30, 0.30};
    const WorkloadResult result = runWorkload(config, spec, gen);

    EXPECT_EQ(result.core.instructions, 50'000u);
    EXPECT_GT(result.core.cycles, result.core.instructions);
    EXPECT_GT(result.oram_accesses, 0u);
    EXPECT_GT(result.traffic.reads, 0u);
    EXPECT_GT(result.traffic.writes, 0u);
    EXPECT_NEAR(result.core.mpki(), 20.0, 4.0);
}

TEST(Experiment, PsOramSlowerThanBaselineButClose)
{
    GeneratorParams gen;
    gen.instructions = 60'000;
    const WorkloadSpec spec{"probe", 25.0, 0.30, 0.30};
    const WorkloadResult base =
        runWorkload(expConfig(DesignKind::Baseline), spec, gen);
    const WorkloadResult ps =
        runWorkload(expConfig(DesignKind::PsOram), spec, gen);
    const double ratio = static_cast<double>(ps.core.cycles) /
                         static_cast<double>(base.core.cycles);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.3); // the paper's headline: ~4.3% overhead
}

TEST(Experiment, NoOramIsMuchFasterThanOram)
{
    GeneratorParams gen;
    gen.instructions = 60'000;
    const WorkloadSpec spec{"probe", 25.0, 0.30, 0.30};
    const WorkloadResult base =
        runWorkload(expConfig(DesignKind::Baseline), spec, gen);
    const WorkloadResult raw =
        runWorkloadNoOram(expConfig(DesignKind::Baseline), spec, gen);
    const double overhead = static_cast<double>(base.core.cycles) /
                            static_cast<double>(raw.core.cycles);
    EXPECT_GT(overhead, 1.8); // paper: 2x-24x at one channel
}

TEST(Experiment, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Experiment, MoreChannelsReduceRuntime)
{
    GeneratorParams gen;
    gen.instructions = 60'000;
    const WorkloadSpec spec{"probe", 25.0, 0.30, 0.30};
    const SystemConfig one = expConfig(DesignKind::PsOram);
    const SystemConfig four = expConfig(DesignKind::PsOram, 4);
    const WorkloadResult r1 = runWorkload(one, spec, gen);
    const WorkloadResult r4 = runWorkload(four, spec, gen);
    EXPECT_LT(r4.core.cycles, r1.core.cycles);
}

} // namespace
} // namespace psoram
