/**
 * @file
 * Crash-consistency tests for the recursive designs (§4.4, §5.1).
 *
 * Rcr-PS-ORAM routes the PosMap ORAM path writes and the stash shadow
 * snapshots through the same atomic WPQ bracket as the data path, so a
 * crash anywhere either commits the whole access or aborts it cleanly.
 * Rcr-Baseline writes the PosMap tree directly and keeps the stash
 * volatile — the negative tests show it loses data.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.hh"
#include "psoram/recovery.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

constexpr std::uint64_t kBlocks = 64;

SystemConfig
rcrConfig(DesignKind design, std::size_t wpq = 256)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 5;
    config.bucket_slots = 4;
    config.num_blocks = kBlocks;
    config.stash_capacity = 48;
    // Recursive bundles carry the data path + PoM path + shadows; a
    // 256-entry WPQ keeps them in one bracket (the small-WPQ case is
    // exercised separately).
    config.wpq_entries = wpq;
    config.cipher = CipherKind::FastStream;
    config.seed = 55;
    return config;
}

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    return version;
}

struct Oracle
{
    std::map<BlockAddr, std::uint32_t> committed;
    std::map<BlockAddr, std::uint32_t> latest;

    CommitObserver
    observer()
    {
        return [this](BlockAddr addr,
                      const std::array<std::uint8_t, kBlockDataBytes>
                          &data) {
            const std::uint32_t version = versionOf(data.data());
            auto &slot = committed[addr];
            if (version > slot)
                slot = version;
        };
    }
};

struct CrashCase
{
    CrashSite site;
    std::uint64_t occurrence;
};

class RcrPsOramCrash : public ::testing::TestWithParam<CrashCase>
{
};

TEST_P(RcrPsOramCrash, RecoversConsistently)
{
    const CrashCase crash = GetParam();
    System system = buildSystem(rcrConfig(DesignKind::RcrPsOram));
    Oracle oracle;
    system.controller->setCommitObserver(oracle.observer());
    CrashAtOccurrence policy(crash.site, crash.occurrence);
    system.controller->setCrashPolicy(&policy);

    Rng rng(17);
    std::uint8_t buf[kBlockDataBytes];
    bool crashed = false;
    for (int op = 0; op < 500 && !crashed; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const bool is_write = rng.nextBool(0.6);
        try {
            if (is_write) {
                const auto version = static_cast<std::uint32_t>(op + 1);
                payload(addr, version, buf);
                system.controller->write(addr, buf);
                oracle.latest[addr] = version;
            } else {
                system.controller->read(addr, buf);
            }
        } catch (const CrashEvent &) {
            crashed = true;
            if (is_write)
                oracle.latest[addr] =
                    static_cast<std::uint32_t>(op + 1);
        }
    }
    ASSERT_TRUE(crashed) << "crash site never reached";

    system.recoverController();
    system.controller->setCommitObserver(oracle.observer());

    for (const auto &[addr, latest] : oracle.latest) {
        system.controller->read(addr, buf);
        const std::uint32_t v = versionOf(buf);
        const auto it = oracle.committed.find(addr);
        const std::uint32_t durable =
            it == oracle.committed.end() ? 0 : it->second;
        EXPECT_GE(v, durable)
            << "addr " << addr << " lost at "
            << crashSiteName(crash.site);
        EXPECT_LE(v, latest) << "addr " << addr << " corrupt";
    }

    // Post-recovery functionality.
    std::map<BlockAddr, std::uint32_t> post;
    for (int op = 0; op < 300; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        if (rng.nextBool(0.5)) {
            const auto version = static_cast<std::uint32_t>(9000 + op);
            payload(addr, version, buf);
            system.controller->write(addr, buf);
            post[addr] = version;
        } else if (post.count(addr)) {
            system.controller->read(addr, buf);
            EXPECT_EQ(versionOf(buf), post[addr])
                << "post-recovery broken, op " << op;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, RcrPsOramCrash,
    ::testing::Values(CrashCase{CrashSite::BetweenAccesses, 10},
                      CrashCase{CrashSite::BetweenAccesses, 150},
                      CrashCase{CrashSite::AfterRemap, 5},
                      CrashCase{CrashSite::AfterRemap, 80},
                      CrashCase{CrashSite::DuringLoad, 12},
                      CrashCase{CrashSite::AfterStashUpdate, 40},
                      CrashCase{CrashSite::BeforeCommit, 8},
                      CrashCase{CrashSite::BeforeCommit, 88},
                      CrashCase{CrashSite::AfterCommit, 9},
                      CrashCase{CrashSite::AfterCommit, 99}),
    [](const auto &info) {
        std::string out;
        for (const char c : crashSiteName(info.param.site))
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out + "_" + std::to_string(info.param.occurrence);
    });

TEST(RcrPsOramCrash2, SmallWpqIsAutoRaisedToOneBracket)
{
    // The recursive eviction bundle must commit in a single atomic
    // bracket (the §4.2.3 multi-round ordering only covers the
    // non-recursive data path, see DESIGN.md): the system builder
    // raises an under-sized WPQ, and evictions then never split.
    System system = buildSystem(rcrConfig(DesignKind::RcrPsOram, 16));
    EXPECT_GT(system.params.design.wpq_entries, 16u);

    Rng rng(61);
    std::uint8_t buf[kBlockDataBytes];
    for (int op = 0; op < 300; ++op) {
        payload(op, op + 1, buf);
        system.controller->write(rng.nextBelow(kBlocks), buf);
    }
    ASSERT_NE(system.controller->drainer(), nullptr);
    EXPECT_EQ(system.controller->drainer()->splitEvictions(), 0u);
}

TEST(RcrPsOramCrash2, ShadowStashRestoresResidentBlocks)
{
    // Focused check: a block resident in the stash at the last commit
    // must be restored from the shadow region by recovery. Z = 2
    // buckets guarantee eviction contention, so the stash is nonempty.
    SystemConfig config = rcrConfig(DesignKind::RcrPsOram);
    config.bucket_slots = 2;
    System system = buildSystem(config);
    Rng rng(23);
    std::uint8_t buf[kBlockDataBytes];
    std::map<BlockAddr, std::uint32_t> latest;
    for (int op = 0; op < 150; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const auto version = static_cast<std::uint32_t>(op + 1);
        payload(addr, version, buf);
        system.controller->write(addr, buf);
        latest[addr] = version;
    }
    const std::size_t resident = system.controller->stash().liveSize();
    if (resident == 0)
        GTEST_SKIP() << "no stash residents with this seed";

    RecoveryReport report;
    system.controller = RecoveryManager::recover(
        std::move(system.controller), *system.device, &report);
    EXPECT_EQ(report.stash_restored, resident);

    for (const auto &[addr, version] : latest) {
        system.controller->read(addr, buf);
        EXPECT_EQ(versionOf(buf), version) << "addr " << addr;
    }
}

TEST(RcrBaselineCrash, VolatileStashLosesData)
{
    // Rcr-Baseline persists the PosMap through the PoM tree but keeps
    // the stash volatile: blocks resident at crash time are gone. Z = 2
    // buckets guarantee there are residents.
    SystemConfig config = rcrConfig(DesignKind::RcrBaseline);
    config.bucket_slots = 2;
    System system = buildSystem(config);
    Rng rng(29);
    std::uint8_t buf[kBlockDataBytes];
    std::map<BlockAddr, std::uint32_t> latest;
    for (int op = 0; op < 200; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const auto version = static_cast<std::uint32_t>(op + 1);
        payload(addr, version, buf);
        system.controller->write(addr, buf);
        latest[addr] = version;
    }
    // Collect the stash residents before the "crash".
    std::vector<BlockAddr> residents;
    for (std::size_t i = 0; i < system.controller->stash().size(); ++i)
        if (!system.controller->stash().at(i).is_backup)
            residents.push_back(system.controller->stash().at(i).addr);
    if (residents.empty())
        GTEST_SKIP() << "no stash residents with this seed";

    system.recoverController();
    std::size_t lost = 0;
    for (const BlockAddr addr : residents) {
        system.controller->read(addr, buf);
        if (versionOf(buf) != latest[addr])
            ++lost;
    }
    EXPECT_GT(lost, 0u)
        << "Rcr-Baseline unexpectedly crash consistent";
}

TEST(RcrPsOramCrash2, RepeatedCrashRecoveryCycles)
{
    System system = buildSystem(rcrConfig(DesignKind::RcrPsOram));
    Oracle oracle;
    system.controller->setCommitObserver(oracle.observer());
    Rng rng(41);
    std::uint8_t buf[kBlockDataBytes];

    for (int round = 0; round < 4; ++round) {
        CrashAtOccurrence policy(
            round % 2 == 0 ? CrashSite::BeforeCommit
                           : CrashSite::AfterCommit,
            7 + static_cast<std::uint64_t>(round) * 3);
        system.controller->setCrashPolicy(&policy);
        for (int op = 0; op < 250; ++op) {
            const BlockAddr addr = rng.nextBelow(kBlocks);
            const auto version =
                static_cast<std::uint32_t>(1000 * (round + 1) + op);
            payload(addr, version, buf);
            try {
                system.controller->write(addr, buf);
                oracle.latest[addr] = version;
            } catch (const CrashEvent &) {
                oracle.latest[addr] = version;
                break;
            }
        }
        system.recoverController();
        system.controller->setCommitObserver(oracle.observer());
        for (const auto &[addr, latest] : oracle.latest) {
            system.controller->read(addr, buf);
            const std::uint32_t v = versionOf(buf);
            EXPECT_GE(v, oracle.committed.count(addr)
                             ? oracle.committed[addr] : 0u)
                << "round " << round << " addr " << addr;
            EXPECT_LE(v, latest);
            oracle.latest[addr] = v;
            oracle.committed[addr] = v;
        }
    }
}

} // namespace
} // namespace psoram
