/**
 * @file
 * Crash consistency on the PagedDiskBackend: the full PS-ORAM recovery
 * guarantee must hold when the tree lives on a real file behind a
 * write-back page cache — including the crash points the disk tier
 * *adds* (mid-pwrite torn pages, the pre-fsync window).
 *
 * The enumerator test loops runArmedCrash() directly instead of
 * enumerateCrashPoints(): each armed replay rebuilds the System, and on
 * disk that would reopen the previous replay's tree — the backing file
 * must be wiped between replays to keep them independent.
 *
 * The sharded tests (2 and 4 shards) replay the cross-shard kill
 * scenario from test_sharded_crash.cc on disk trees: shard 0 fully
 * persisted, shard 1 killed mid-WPQ, every shard's RAM page cache lost,
 * recovery from the files alone.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "nvm/paged_disk.hh"
#include "sim/crash_enumerator.hh"
#include "sim/sharded_system.hh"

namespace psoram {
namespace {

std::string
tmpTree(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    for (unsigned shard = 0; shard < 8; ++shard)
        std::remove(
            (path + ".shard" + std::to_string(shard)).c_str());
    return path;
}

SystemConfig
diskCrashConfig(const std::string &path)
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 5;
    config.num_blocks = 24;
    config.stash_capacity = 64;
    config.seed = 29;
    config.backend = BackendKind::Disk;
    config.backing_file = path;
    config.disk_cache_pages = 32; // far smaller than the tree
    config.disk_pinned_pages = 4;
    return config;
}

/**
 * Exhaustively sampled crash-point enumeration over the disk backend,
 * with a fresh tree per replay. The stride is co-prime with the
 * DrainWrite/PageWrite/Sync periodicity of a noisy disk write so every
 * boundary kind — including the torn-page PageWrite points — gets hit.
 */
TEST(DiskCrashEnum, SampledBoundariesAllRecoverOnDisk)
{
    const std::string path = tmpTree("disk_crash_enum.tree");
    CrashEnumConfig config;
    config.system = diskCrashConfig(path);
    config.trace = makeCrashTrace(/*seed=*/7, /*ops=*/10,
                                  config.system.num_blocks);
    config.post_recovery_ops = 32;

    // Probe: count the boundary population and its kinds.
    std::uint64_t total = 0;
    std::array<std::uint64_t, kNumPersistBoundaryKinds> kinds{};
    {
        System system = buildSystem(config.system);
        RecoveryOracle oracle;
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        std::uint8_t buf[kBlockDataBytes];
        for (const TraceOp &op : config.trace) {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                system.controller->write(op.addr, buf);
            } else {
                system.controller->read(op.addr, buf);
            }
        }
        total = injector.boundariesSeen();
        for (std::size_t kind = 0; kind < kinds.size(); ++kind)
            kinds[kind] =
                injector.kindCount(static_cast<PersistBoundary>(kind));
    }
    ASSERT_GT(total, 0u);
    // The disk tier's own crash points must be in the enumeration
    // domain, or the torn-page argument is vacuous.
    EXPECT_GT(kinds[static_cast<std::size_t>(PersistBoundary::PageWrite)],
              0u)
        << "no torn-page crash points enumerated";
    EXPECT_GT(kinds[static_cast<std::size_t>(PersistBoundary::Sync)], 0u)
        << "no pre-fsync crash points enumerated";

    std::uint64_t replays = 0;
    for (std::uint64_t k = 1; k <= total; k += 13) {
        std::remove(path.c_str()); // fresh tree per replay
        const std::vector<std::string> violations =
            runArmedCrash(config, k);
        ++replays;
        for (const std::string &violation : violations)
            ADD_FAILURE() << violation;
        if (::testing::Test::HasFailure())
            break;
    }
    EXPECT_GT(replays, 10u);
    std::remove(path.c_str());
}

/**
 * Crash exactly at the disk-specific boundary kinds — a mid-pwrite
 * PageWrite (the torn-page point) and a pre-fsync Sync — located
 * deterministically, then recovered and checked like any other point.
 */
TEST(DiskCrashEnum, TornPageAndFsyncBoundariesRecover)
{
    const std::string path = tmpTree("disk_crash_kinds.tree");
    CrashEnumConfig config;
    config.system = diskCrashConfig(path);
    config.trace = makeCrashTrace(/*seed=*/11, /*ops=*/8,
                                  config.system.num_blocks);
    config.post_recovery_ops = 24;

    // Locate the first boundaries of each target kind: arm index k on
    // a fresh system, observe which kind fired. The sequence is
    // deterministic per (config, trace), so these probes are exact.
    std::map<PersistBoundary, std::uint64_t> first_of_kind;
    for (std::uint64_t k = 1; k <= 64 && first_of_kind.size() < 2; ++k) {
        std::remove(path.c_str());
        System system = buildSystem(config.system);
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        injector.armAt(k);
        std::uint8_t buf[kBlockDataBytes];
        try {
            for (const TraceOp &op : config.trace) {
                if (op.is_write) {
                    stampPayload(op.addr, op.version, buf);
                    system.controller->write(op.addr, buf);
                } else {
                    system.controller->read(op.addr, buf);
                }
            }
        } catch (const InjectedFault &) {
            const PersistBoundary kind = injector.firedKind();
            if ((kind == PersistBoundary::PageWrite ||
                 kind == PersistBoundary::Sync) &&
                !first_of_kind.count(kind))
                first_of_kind[kind] = k;
        }
    }
    ASSERT_TRUE(first_of_kind.count(PersistBoundary::PageWrite))
        << "no torn-page boundary in the first 64";
    ASSERT_TRUE(first_of_kind.count(PersistBoundary::Sync))
        << "no fsync boundary in the first 64";

    for (const auto &[kind, k] : first_of_kind) {
        std::remove(path.c_str());
        for (const std::string &violation : runArmedCrash(config, k))
            ADD_FAILURE()
                << persistBoundaryName(kind) << ": " << violation;
    }
    std::remove(path.c_str());
}

/**
 * Torn pages under the integrity layer: crash exactly at the mid-pwrite
 * PageWrite boundary with integrity=tree and recover. The tear must
 * surface as the page trailer CRC (discarded and re-recovered) or as a
 * typed MAC/hash refusal — never as silently accepted corrupt data.
 * The armed replay's invariant checker (I4 old-or-new + I5 integrity
 * re-verification) is exactly that never-silent guarantee.
 */
TEST(DiskCrashEnum, TornPageWithIntegrityTreeNeverSilent)
{
    const std::string path = tmpTree("disk_crash_integrity.tree");
    CrashEnumConfig config;
    config.system = diskCrashConfig(path);
    config.system.integrity = IntegrityMode::Tree;
    config.trace = makeCrashTrace(/*seed=*/11, /*ops=*/8,
                                  config.system.num_blocks);
    config.post_recovery_ops = 24;

    // Locate the first torn-page boundary for this (config, trace).
    std::uint64_t page_write_k = 0;
    for (std::uint64_t k = 1; k <= 96 && page_write_k == 0; ++k) {
        std::remove(path.c_str());
        System system = buildSystem(config.system);
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        injector.armAt(k);
        std::uint8_t buf[kBlockDataBytes];
        try {
            for (const TraceOp &op : config.trace) {
                if (op.is_write) {
                    stampPayload(op.addr, op.version, buf);
                    system.controller->write(op.addr, buf);
                } else {
                    system.controller->read(op.addr, buf);
                }
            }
        } catch (const InjectedFault &) {
            if (injector.firedKind() == PersistBoundary::PageWrite)
                page_write_k = k;
        }
    }
    ASSERT_NE(page_write_k, 0u)
        << "no torn-page boundary in the first 96";

    std::remove(path.c_str());
    for (const std::string &violation :
         runArmedCrash(config, page_write_k))
        ADD_FAILURE() << violation;
    std::remove(path.c_str());
}

PagedDiskBackend *
diskNvm(System &system)
{
    auto *disk = dynamic_cast<PagedDiskBackend *>(system.device.get());
    EXPECT_NE(disk, nullptr);
    return disk;
}

void
runShardedDiskKill(unsigned num_shards)
{
    const std::string backing = tmpTree(
        "disk_sharded_crash_" + std::to_string(num_shards) + ".tree");
    ShardedSystemConfig config;
    config.base = diskCrashConfig(backing);
    config.base.tree_height = 6;
    config.base.num_blocks = 96;
    config.base.seed = 31;
    config.sharding.num_shards = num_shards;

    constexpr BlockAddr kBlocks = 96;
    std::uint8_t buf[kBlockDataBytes];
    std::vector<RecoveryOracle> oracle(num_shards);
    const unsigned victim = num_shards - 1;

    // "Process 1": version-1 writes everywhere; kill the victim shard
    // mid-WPQ on a version-2 write; power fails for every shard.
    {
        ShardedSystem system = buildShardedSystem(config);
        ASSERT_EQ(system.numShards(), num_shards);
        for (unsigned k = 0; k < num_shards; ++k)
            system.controller(k).setCommitObserver(
                oracle[k].observer());

        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            stampPayload(slot.local, 1, buf);
            system.controller(slot.shard).write(slot.local, buf);
            oracle[slot.shard].latest[slot.local] = 1;
        }

        CrashAtOccurrence policy(CrashSite::BeforeCommit, 1);
        system.controller(victim).setCrashPolicy(&policy);
        bool crashed = false;
        for (BlockAddr addr = 0; addr < kBlocks && !crashed; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            if (slot.shard != victim)
                continue;
            stampPayload(slot.local, 2, buf);
            try {
                system.controller(victim).write(slot.local, buf);
                oracle[victim].latest[slot.local] = 2;
            } catch (const CrashEvent &) {
                crashed = true;
                oracle[victim].latest[slot.local] = 2;
            }
        }
        ASSERT_TRUE(crashed) << "WPQ crash site never reached";

        // Power failure: ADR flush lands (write-through + fsync on
        // disk), then every shard's RAM page cache is gone. No orderly
        // shutdown flush may save un-persisted state.
        for (unsigned k = 0; k < num_shards; ++k) {
            system.controller(k).powerFailureFlush();
            diskNvm(system.shards[k])->dropVolatile();
        }
    }

    // "Process 2": reopen the trees, recover, check the guarantee.
    {
        ShardedSystem system = buildShardedSystem(config);
        for (unsigned k = 0; k < num_shards; ++k)
            system.controller(k).recoverFromNvm();

        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            std::memset(buf, 0xFF, sizeof(buf));
            system.controller(slot.shard).read(slot.local, buf);
            const std::uint32_t v = payloadVersion(buf);
            EXPECT_GE(v, oracle[slot.shard].durableOf(slot.local))
                << "shard " << slot.shard << " lost block " << addr;
            EXPECT_LE(v, oracle[slot.shard].latest.at(slot.local))
                << "shard " << slot.shard << " resurrected block "
                << addr;
            if (v != 0) {
                EXPECT_EQ(payloadAddr(buf), slot.local)
                    << "shard " << slot.shard << " tore block " << addr;
            }
        }

        // Recovery must leave every shard fully functional.
        std::map<BlockAddr, std::uint32_t> post;
        for (BlockAddr addr = 0; addr < kBlocks; addr += 5) {
            const ShardSlot slot = system.router.route(addr);
            const auto version = static_cast<std::uint32_t>(500 + addr);
            stampPayload(slot.local, version, buf);
            system.controller(slot.shard).write(slot.local, buf);
            post[addr] = version;
        }
        for (const auto &[addr, version] : post) {
            const ShardSlot slot = system.router.route(addr);
            system.controller(slot.shard).read(slot.local, buf);
            EXPECT_EQ(payloadVersion(buf), version)
                << "post-recovery shard " << slot.shard << " broken";
        }
    }
    tmpTree("disk_sharded_crash_" + std::to_string(num_shards) +
            ".tree"); // scrub
}

TEST(DiskCrash, SingleShardKillRecoversFromFile)
{
    runShardedDiskKill(1);
}

TEST(DiskCrash, TwoShardKillRecoversBothTrees)
{
    runShardedDiskKill(2);
}

TEST(DiskCrash, FourShardKillRecoversAllTrees)
{
    runShardedDiskKill(4);
}

} // namespace
} // namespace psoram
