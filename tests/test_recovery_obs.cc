/**
 * @file
 * Crash forensics: recovery-phase stats, the persistent flight recorder
 * ("black box"), and the obliviousness argument that lets the recorder
 * run in production configs.
 *
 *  - RecoveryStats identity: the six phase distributions are adjacent
 *    host-clock windows, so their sums equal the total EXACTLY (no
 *    epsilon) — the same invariant the CI schema gate checks on
 *    BENCH_recovery.json rows.
 *  - Trace spans: RecoveryManager::recover emits a "recovery" category
 *    timeline whose child phases nest inside the recover span.
 *  - Black box: ring round-trip through a real crash/recover cycle,
 *    torn-tail degradation (CRC-failed slots are counted and skipped,
 *    recovery still passes the I1–I5 invariant checker), and
 *    seq-resume across a file-backed reopen.
 *  - Transparency differential: with the digest restricted to the
 *    protocol address range, a run with the recorder on is
 *    byte-for-byte identical to a run with it off — the black box
 *    never perturbs tree traffic (the obliviousness argument,
 *    DESIGN.md §16).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nvm/device.hh"
#include "nvm/flight_recorder.hh"
#include "obs/trace.hh"
#include "sim/crash_enumerator.hh"
#include "sim/recovery_invariants.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 4;
    config.bucket_slots = 4;
    config.num_blocks = 48;
    config.stash_capacity = 96;
    config.wpq_entries = 8;
    config.seed = 7;
    return config;
}

/** Drive a deterministic write-heavy trace, tracking the oracle. */
void
driveTrace(System &system, RecoveryOracle &oracle, std::size_t ops,
           std::uint64_t seed = 11)
{
    const std::vector<TraceOp> trace =
        makeCrashTrace(seed, ops, system.config.num_blocks, 0.7);
    std::uint8_t buf[kBlockDataBytes];
    for (const TraceOp &op : trace) {
        if (op.is_write) {
            stampPayload(op.addr, op.version, buf);
            system.controller->write(op.addr, buf);
            oracle.latest[op.addr] = op.version;
        } else {
            system.controller->read(op.addr, buf);
        }
    }
}

void
wireOracle(System &system, RecoveryOracle &oracle)
{
    system.controller->setCommitObserver(oracle.observer());
    system.setRebindHook([&oracle](PsOramController &ctrl) {
        ctrl.setCommitObserver(oracle.observer());
    });
}

TEST(RecoveryStats, PhaseSumsEqualTotalExactly)
{
    SystemConfig config = smallConfig();
    config.flight_recorder = true;
    System system = buildSystem(config);
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 48);

    system.recoverController();

    const RecoveryStats &s = *system.recovery_stats;
    EXPECT_EQ(s.recoveries.value(), 1u);
    // Exact identity, not approximate: the phases are adjacent windows
    // of the same clock and the ns deltas are well inside 2^53.
    EXPECT_EQ(s.phaseSum(), s.total.sum());
    EXPECT_GT(s.wpq_replay.sum(), 0.0);
    EXPECT_GT(s.adr_redeliver.sum(), 0.0);
    EXPECT_GT(s.image_reload.sum(), 0.0);
    EXPECT_GT(s.posmap_rebuild.sum(), 0.0);
    // Flight ring was on: recovery decoded it before rebuilding.
    EXPECT_GT(s.blackbox_events.value(), 0u);
    EXPECT_EQ(checkRecoveryInvariants(system, oracle),
              std::vector<std::string>{});
}

TEST(RecoveryStats, IntegrityPhasesPopulatedUnderTreeMode)
{
    SystemConfig config = smallConfig();
    config.integrity = IntegrityMode::Tree;
    System system = buildSystem(config);
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 48);

    system.recoverController();

    const RecoveryStats &s = *system.recovery_stats;
    EXPECT_EQ(s.phaseSum(), s.total.sum());
    EXPECT_GT(s.integrity_verify.sum(), 0.0);
    EXPECT_GT(s.records_verified.value(), 0u);
    EXPECT_EQ(s.records_refused.value(), 0u);
    EXPECT_EQ(checkRecoveryInvariants(system, oracle),
              std::vector<std::string>{});
}

TEST(RecoveryStats, SecondRecoveryAccumulates)
{
    System system = buildSystem(smallConfig());
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 32);
    system.recoverController();
    driveTrace(system, oracle, 16, /*seed=*/13);
    system.recoverController();

    const RecoveryStats &s = *system.recovery_stats;
    EXPECT_EQ(s.recoveries.value(), 2u);
    EXPECT_EQ(s.total.count(), 2u);
    EXPECT_EQ(s.phaseSum(), s.total.sum());
}

TEST(RecoveryTrace, RecoverSpanNestsPhaseSpans)
{
    obs::TraceRecorder &recorder = obs::TraceRecorder::instance();
    recorder.enable();
    recorder.clear();

    System system = buildSystem(smallConfig());
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 32);
    recorder.clear(); // keep only the recovery timeline
    system.recoverController();

    const std::vector<obs::TraceEvent> events = recorder.snapshot();
    recorder.disable();

    const auto find = [&events](const char *name) -> const obs::TraceEvent * {
        for (const obs::TraceEvent &ev : events)
            if (ev.category && !std::strcmp(ev.category, "recovery") &&
                ev.name && !std::strcmp(ev.name, name))
                return &ev;
        return nullptr;
    };
    const obs::TraceEvent *recover = find("recover");
    ASSERT_NE(recover, nullptr);
    EXPECT_EQ(recover->phase, 'X');
    for (const char *phase :
         {"wpq_replay", "adr_redeliver", "image_reload",
          "posmap_rebuild"}) {
        const obs::TraceEvent *span = find(phase);
        ASSERT_NE(span, nullptr) << phase;
        EXPECT_EQ(span->phase, 'X') << phase;
        // Nested: the phase span lies inside the recover span's window.
        EXPECT_GE(span->ts_ns, recover->ts_ns) << phase;
        EXPECT_LE(span->ts_ns + span->dur_ns,
                  recover->ts_ns + recover->dur_ns)
            << phase;
    }
}

TEST(FlightRecorder, RecordsRoundTripThroughTheRing)
{
    SystemConfig config = smallConfig();
    config.flight_recorder = true;
    config.flight_records = 1024; // no wrap: every round survives
    System system = buildSystem(config);
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 24);

    const FlightRecorder::Decoded box =
        system.flight_recorder->decode(*system.device);
    ASSERT_TRUE(box.header_valid);
    EXPECT_EQ(box.torn_records, 0u);
    ASSERT_FALSE(box.events.empty());
    // The ring never wrapped: the whole history survives.
    ASSERT_EQ(box.events.size(), system.flight_recorder->nextSeq());
    std::uint64_t starts = 0, commits = 0;
    for (std::size_t i = 0; i < box.events.size(); ++i) {
        if (i > 0) {
            EXPECT_EQ(box.events[i].seq, box.events[i - 1].seq + 1);
        }
        if (box.events[i].kind == FlightEventKind::RoundStart)
            ++starts;
        if (box.events[i].kind == FlightEventKind::RoundCommit)
            ++commits;
    }
    EXPECT_GT(starts, 0u);
    EXPECT_GT(commits, 0u);
    // Bracketing: every commit belongs to an opened round.
    EXPECT_LE(commits, starts);
}

TEST(FlightRecorder, WrapKeepsTheNewestEvents)
{
    SystemConfig config = smallConfig();
    config.flight_recorder = true;
    config.flight_records = 8; // tiny: guaranteed wrap-around
    System system = buildSystem(config);
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 48);

    const FlightRecorder::Decoded box =
        system.flight_recorder->decode(*system.device);
    ASSERT_TRUE(box.header_valid);
    EXPECT_EQ(box.events.size(), 8u);
    ASSERT_NE(box.tail(), nullptr);
    EXPECT_EQ(box.tail()->seq + 1, system.flight_recorder->nextSeq());
}

TEST(FlightRecorder, TornTailIsSkippedAndRecoveryStillPasses)
{
    SystemConfig config = smallConfig();
    config.flight_recorder = true;
    System system = buildSystem(config);
    RecoveryOracle oracle;
    wireOracle(system, oracle);
    driveTrace(system, oracle, 32);

    // Tear the tail record: scribble over its payload bytes without
    // updating the CRC, as a crash mid-line-write would.
    const FlightRecorder &rec = *system.flight_recorder;
    const std::uint64_t tail_seq = rec.nextSeq() - 1;
    const Addr tail_slot =
        rec.base() + FlightRecorder::kHeaderBytes +
        (tail_seq % rec.numRecords()) * FlightRecorder::kRecordBytes;
    const std::uint8_t garbage[8] = {0xde, 0xad, 0xbe, 0xef,
                                     0xde, 0xad, 0xbe, 0xef};
    system.device->writeBytesQuiet(tail_slot + 16, garbage,
                                   sizeof(garbage));

    const FlightRecorder::Decoded torn = rec.decode(*system.device);
    ASSERT_TRUE(torn.header_valid);
    EXPECT_EQ(torn.torn_records, 1u);
    ASSERT_NE(torn.tail(), nullptr);
    EXPECT_LT(torn.tail()->seq, tail_seq);

    // The degraded ring must not degrade recovery.
    system.recoverController();
    EXPECT_EQ(checkRecoveryInvariants(system, oracle),
              std::vector<std::string>{});
    EXPECT_GE(system.recovery_stats->blackbox_torn.value(), 1u);

    // format() reports the degradation without throwing.
    const std::string dump = FlightRecorder::format(torn);
    EXPECT_NE(dump.find("1 torn record(s)"), std::string::npos);
}

TEST(FlightRecorder, SequenceResumesAcrossFileBackedReopen)
{
    const std::string path = "flight_reopen_test.img";
    std::remove(path.c_str());
    SystemConfig config = smallConfig();
    config.flight_recorder = true;
    config.backing_file = path;

    std::uint64_t first_run_seq = 0;
    {
        System system = buildSystem(config);
        RecoveryOracle oracle;
        wireOracle(system, oracle);
        driveTrace(system, oracle, 24);
        first_run_seq = system.flight_recorder->nextSeq();
        EXPECT_GT(first_run_seq, 0u);
    } // destructor persists the image, stamping a Checkpoint marker

    {
        System reopened = buildSystem(config);
        // attach() found the previous run's ring: the sequence resumes
        // past its tail (the destructor checkpoint landed after
        // first_run_seq was read) instead of overwriting history.
        EXPECT_GT(reopened.flight_recorder->nextSeq(), first_run_seq);
        const FlightRecorder::Decoded box =
            reopened.flight_recorder->decode(*reopened.device);
        ASSERT_TRUE(box.header_valid);
        bool saw_checkpoint = false;
        for (const FlightEvent &ev : box.events)
            saw_checkpoint |= ev.kind == FlightEventKind::Checkpoint;
        EXPECT_TRUE(saw_checkpoint);
    }
    std::remove(path.c_str());
}

TEST(FlightRecorder, ShardedRecoveryMergesStats)
{
    ShardedSystemConfig config;
    config.base = smallConfig();
    config.base.flight_recorder = true;
    config.sharding.num_shards = 2;
    ShardedSystem sharded = buildShardedSystem(config);

    std::uint8_t buf[kBlockDataBytes];
    const std::vector<TraceOp> trace =
        makeCrashTrace(17, 48, sharded.router.totalBlocks(), 0.7);
    for (const TraceOp &op : trace) {
        const ShardSlot slot = sharded.router.route(op.addr);
        if (op.is_write) {
            stampPayload(slot.local, op.version, buf);
            sharded.controller(slot.shard).write(slot.local, buf);
        } else {
            sharded.controller(slot.shard).read(slot.local, buf);
        }
    }

    sharded.recoverShard(0);
    const RecoveryStats &victim = *sharded.shards[0].recovery_stats;
    EXPECT_EQ(victim.recoveries.value(), 1u);
    EXPECT_EQ(victim.phaseSum(), victim.total.sum());
    EXPECT_EQ(sharded.shards[1].recovery_stats->recoveries.value(), 0u);

    RecoveryStats fleet;
    for (const System &shard : sharded.shards)
        fleet.merge(*shard.recovery_stats);
    EXPECT_EQ(fleet.recoveries.value(), 1u);
    EXPECT_EQ(fleet.phaseSum(), fleet.total.sum());
}

/**
 * Digest functional traffic below @p limit only — the protocol address
 * range. The flight ring lives above the limit, so its appends (and the
 * attach-time decode reads) are excluded by address, never by opcode:
 * any recorder write that leaked into the protocol range WOULD change
 * the digest.
 */
class RegionDigestBackend final : public MemoryBackend
{
  public:
    RegionDigestBackend(MemoryBackend &inner, Addr limit)
        : inner_(inner), limit_(limit)
    {
    }

    void
    readBytes(Addr addr, std::uint8_t *out,
              std::size_t len) const override
    {
        inner_.readBytes(addr, out, len);
        if (addr < limit_)
            mixOp('R', addr, len);
    }

    void
    writeBytes(Addr addr, const std::uint8_t *in,
               std::size_t len) override
    {
        if (addr < limit_) {
            mixOp('W', addr, len);
            for (std::size_t i = 0; i < len; ++i)
                mixByte(in[i]);
        }
        inner_.writeBytes(addr, in, len);
    }

    Cycle
    access(Addr addr, std::size_t len, bool is_write,
           Cycle earliest) override
    {
        return inner_.access(addr, len, is_write, earliest);
    }
    Cycle
    accessOne(Addr addr, bool is_write, Cycle earliest) override
    {
        return inner_.accessOne(addr, is_write, earliest);
    }
    std::uint64_t capacity() const override { return inner_.capacity(); }
    std::uint64_t totalReads() const override
    {
        return inner_.totalReads();
    }
    std::uint64_t totalWrites() const override
    {
        return inner_.totalWrites();
    }
    std::uint64_t distinctLinesWritten() const override
    {
        return inner_.distinctLinesWritten();
    }
    std::uint64_t maxLineWrites() const override
    {
        return inner_.maxLineWrites();
    }
    double meanLineWrites() const override
    {
        return inner_.meanLineWrites();
    }
    void resetStats() override { inner_.resetStats(); }
    MemoryImage image() const override { return inner_.image(); }
    void
    restoreImage(const MemoryImage &img) override
    {
        inner_.restoreImage(img);
    }

    std::uint64_t digest() const { return hash_; }
    std::uint64_t operations() const { return ops_; }

  private:
    void
    mixByte(std::uint8_t b) const
    {
        hash_ = (hash_ ^ b) * 0x100000001b3ULL; // FNV-1a 64
    }
    void
    mixOp(std::uint8_t op, Addr addr, std::size_t len) const
    {
        ++ops_;
        mixByte(op);
        for (int shift = 0; shift < 64; shift += 8)
            mixByte(static_cast<std::uint8_t>(addr >> shift));
        for (int shift = 0; shift < 32; shift += 8)
            mixByte(static_cast<std::uint8_t>(len >> shift));
    }

    MemoryBackend &inner_;
    const Addr limit_;
    mutable std::uint64_t hash_ = 0xcbf29ce484222325ULL;
    mutable std::uint64_t ops_ = 0;
};

TEST(FlightRecorder, TransparencyDifferentialTreeTrafficUnchanged)
{
    SystemConfig off_config = smallConfig();
    SystemConfig on_config = off_config;
    on_config.flight_recorder = true;

    const PsOramParams off_params = systemParams(off_config);
    const PsOramParams on_params = systemParams(on_config);
    ASSERT_NE(on_params.flight_recorder_base, 0u);
    // Region laid out last: enabling the ring moves no protocol region.
    ASSERT_EQ(off_params.posmap_region_base,
              on_params.posmap_region_base);
    const Addr limit = on_params.flight_recorder_base;
    const std::uint64_t capacity =
        limit +
        FlightRecorder::regionBytes(on_params.flight_recorder_records) +
        (1ULL << 20);

    const auto run = [&](const PsOramParams &params,
                         bool with_recorder) {
        NvmDevice device(timingsFor(NvmTech::PCM), 1, 8, capacity);
        RegionDigestBackend digesting(device, limit);
        std::unique_ptr<FlightRecorder> recorder;
        if (with_recorder) {
            recorder = std::make_unique<FlightRecorder>(
                params.flight_recorder_base,
                params.flight_recorder_records);
            recorder->attach(digesting);
            digesting.setFlightRecorder(recorder.get());
        }
        PsOramController controller(params, digesting);
        if (recorder)
            controller.attachFlightRecorder(recorder.get());
        const std::vector<TraceOp> trace =
            makeCrashTrace(23, 64, off_config.num_blocks, 0.7);
        std::uint8_t buf[kBlockDataBytes];
        for (const TraceOp &op : trace) {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                controller.write(op.addr, buf);
            } else {
                controller.read(op.addr, buf);
            }
        }
        if (recorder) {
            EXPECT_GT(recorder->nextSeq(), 0u);
        }
        return std::make_pair(digesting.digest(),
                              digesting.operations());
    };

    const auto [off_digest, off_ops] = run(off_params, false);
    const auto [on_digest, on_ops] = run(on_params, true);
    // Byte-identical protocol traffic, operation for operation.
    EXPECT_EQ(off_ops, on_ops);
    EXPECT_EQ(off_digest, on_digest);
}

} // namespace
} // namespace psoram
