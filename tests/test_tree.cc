/**
 * @file
 * ORAM tree geometry tests: bucket indexing, path enumeration, common
 * prefix levels, and the NVM layout.
 */

#include <gtest/gtest.h>

#include <set>

#include "oram/tree.hh"

namespace psoram {
namespace {

TEST(TreeGeometry, BasicCounts)
{
    const TreeGeometry geo{3, 2}; // the Figure 1 example: L=3, Z=2
    EXPECT_EQ(geo.levels(), 4u);
    EXPECT_EQ(geo.numLeaves(), 8u);
    EXPECT_EQ(geo.numBuckets(), 15u);
    EXPECT_EQ(geo.numSlots(), 30u);
    EXPECT_EQ(geo.blocksPerPath(), 8u);
    EXPECT_EQ(geo.dataBlocks(0.5), 15u);
}

TEST(TreeGeometry, PaperConfigSizes)
{
    const TreeGeometry geo{23, 4}; // Table 3b
    EXPECT_EQ(geo.numLeaves(), 1ULL << 23);
    EXPECT_EQ(geo.blocksPerPath(), 96u); // Z*(L+1), the WPQ size
    // 2^26-ish slots at 64B data = the paper's 4GB tree / 2GB data.
    EXPECT_EQ(geo.dataBlocks(0.5) * 64, 2147483520ULL); // ~2 GB
}

TEST(TreeGeometry, RootIsOnEveryPath)
{
    const TreeGeometry geo{4, 4};
    for (PathId leaf = 0; leaf < geo.numLeaves(); ++leaf)
        EXPECT_EQ(geo.bucketAt(leaf, 0), 0u);
}

TEST(TreeGeometry, LeafBucketsAreDistinct)
{
    const TreeGeometry geo{4, 4};
    std::set<BucketId> buckets;
    for (PathId leaf = 0; leaf < geo.numLeaves(); ++leaf)
        buckets.insert(geo.bucketAt(leaf, geo.height));
    EXPECT_EQ(buckets.size(), geo.numLeaves());
}

TEST(TreeGeometry, PathBucketsChainParentChild)
{
    const TreeGeometry geo{6, 4};
    const std::vector<BucketId> path = geo.pathBuckets(37);
    ASSERT_EQ(path.size(), geo.levels());
    EXPECT_EQ(path[0], 0u);
    for (std::size_t i = 1; i < path.size(); ++i) {
        // child = 2*parent+1 or 2*parent+2 in the breadth-first array
        EXPECT_TRUE(path[i] == 2 * path[i - 1] + 1 ||
                    path[i] == 2 * path[i - 1] + 2)
            << "level " << i;
    }
}

TEST(TreeGeometry, CommonLevelProperties)
{
    const TreeGeometry geo{5, 4};
    for (PathId a = 0; a < geo.numLeaves(); a += 3) {
        EXPECT_EQ(geo.commonLevel(a, a), geo.height);
        for (PathId b = 0; b < geo.numLeaves(); b += 5) {
            const unsigned ab = geo.commonLevel(a, b);
            EXPECT_EQ(ab, geo.commonLevel(b, a)); // symmetric
            // The buckets at the common level coincide...
            EXPECT_EQ(geo.bucketAt(a, ab), geo.bucketAt(b, ab));
            // ...and diverge one level deeper.
            if (ab < geo.height)
                EXPECT_NE(geo.bucketAt(a, ab + 1),
                          geo.bucketAt(b, ab + 1));
        }
    }
}

TEST(TreeGeometry, SiblingLeavesShareAllButLastLevel)
{
    const TreeGeometry geo{5, 4};
    EXPECT_EQ(geo.commonLevel(6, 7), geo.height - 1);
    EXPECT_EQ(geo.commonLevel(0, geo.numLeaves() - 1), 0u);
}

TEST(TreeGeometry, LeafUnderIsInverseOfBucketAt)
{
    const TreeGeometry geo{5, 4};
    for (BucketId bucket = 0; bucket < geo.numBuckets(); ++bucket) {
        const PathId leaf = geo.leafUnder(bucket);
        bool on_path = false;
        for (unsigned level = 0; level <= geo.height; ++level)
            on_path |= (geo.bucketAt(leaf, level) == bucket);
        EXPECT_TRUE(on_path) << "bucket " << bucket;
    }
}

TEST(TreeGeometry, OutOfRangePanics)
{
    const TreeGeometry geo{3, 4};
    EXPECT_DEATH(geo.bucketAt(0, 4), "beyond tree height");
    EXPECT_DEATH(geo.bucketAt(8, 0), "out of range");
    EXPECT_DEATH(geo.leafUnder(geo.numBuckets()), "out of range");
}

TEST(TreeLayout, SlotAddressesAreDisjointAndOrdered)
{
    TreeLayout layout;
    layout.geometry = TreeGeometry{3, 2};
    layout.base = 4096;
    std::set<Addr> addresses;
    for (BucketId bucket = 0; bucket < layout.geometry.numBuckets();
         ++bucket) {
        for (unsigned slot = 0; slot < 2; ++slot) {
            const Addr addr = layout.slotAddr(bucket, slot);
            EXPECT_GE(addr, layout.base);
            EXPECT_LT(addr, layout.base + layout.footprintBytes());
            EXPECT_TRUE(addresses.insert(addr).second);
            // Slots are kSlotBytes apart.
            EXPECT_EQ((addr - layout.base) % kSlotBytes, 0u);
        }
    }
    EXPECT_EQ(addresses.size(), layout.geometry.numSlots());
}

} // namespace
} // namespace psoram
