/**
 * @file
 * Unit tests for the common infrastructure: RNG, bit utilities, config
 * store, statistics, and the table printer.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bitops.hh"
#include "common/config.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace psoram {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(13);
    int heads = 0;
    for (int i = 0; i < 20000; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, PathsCoverLeafSpaceUniformly)
{
    Rng rng(17);
    constexpr std::uint64_t kLeaves = 16;
    std::array<int, kLeaves> histogram{};
    constexpr int kDraws = 16000;
    for (int i = 0; i < kDraws; ++i)
        ++histogram[rng.nextPath(kLeaves)];
    for (const int count : histogram)
        EXPECT_NEAR(count, kDraws / kLeaves, 250);
}

TEST(Bitops, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(Bitops, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCu);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
    EXPECT_EQ(bits(0xF0, 4, 4), 0xFu);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 5), 0u);
    EXPECT_EQ(divCeil(1, 5), 1u);
    EXPECT_EQ(divCeil(5, 5), 1u);
    EXPECT_EQ(divCeil(6, 5), 2u);
}

TEST(Config, TypedAccessorsAndDefaults)
{
    Config config;
    config.set("name", "psoram");
    config.setInt("height", 23);
    config.setDouble("util", 0.5);
    config.setBool("recursive", true);

    EXPECT_EQ(config.getString("name", "x"), "psoram");
    EXPECT_EQ(config.getInt("height", 0), 23);
    EXPECT_DOUBLE_EQ(config.getDouble("util", 0.0), 0.5);
    EXPECT_TRUE(config.getBool("recursive", false));
    EXPECT_EQ(config.getInt("missing", 7), 7);
    EXPECT_FALSE(config.has("missing"));
}

TEST(Config, ParseAssignment)
{
    Config config;
    EXPECT_TRUE(config.parseAssignment("wpq=4"));
    EXPECT_TRUE(config.parseAssignment("cipher=aes"));
    EXPECT_FALSE(config.parseAssignment("no-equals"));
    EXPECT_FALSE(config.parseAssignment("=value"));
    EXPECT_EQ(config.getInt("wpq", 0), 4);
    EXPECT_EQ(config.getString("cipher", ""), "aes");
}

TEST(Config, ParseArgsSkipsNonAssignments)
{
    const char *argv[] = {"prog", "height=6", "--flag", "z=2"};
    Config config;
    config.parseArgs(4, const_cast<char **>(argv));
    EXPECT_EQ(config.getInt("height", 0), 6);
    EXPECT_EQ(config.getInt("z", 0), 2);
    EXPECT_EQ(config.keys().size(), 2u);
}

TEST(Stats, CounterBasics)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter += 5;
    EXPECT_EQ(counter.value(), 6u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    Distribution dist;
    dist.sample(1.0);
    dist.sample(5.0);
    dist.sample(3.0);
    EXPECT_EQ(dist.count(), 3u);
    EXPECT_DOUBLE_EQ(dist.mean(), 3.0);
    EXPECT_DOUBLE_EQ(dist.min(), 1.0);
    EXPECT_DOUBLE_EQ(dist.max(), 5.0);
}

TEST(Stats, HistogramBucketsAndPercentile)
{
    Histogram histogram(10, 1.0);
    for (int i = 0; i < 100; ++i)
        histogram.sample(i % 10);
    EXPECT_EQ(histogram.total(), 100u);
    EXPECT_EQ(histogram.bucketCount(0), 10u);
    EXPECT_EQ(histogram.overflow(), 0u);
    EXPECT_NEAR(histogram.percentile(0.5), 5.0, 1.0);

    histogram.sample(100.0);
    EXPECT_EQ(histogram.overflow(), 1u);
}

TEST(Stats, GroupDumpsRegisteredStats)
{
    StatGroup group("oram");
    Counter reads;
    reads += 42;
    group.addCounter("reads", &reads, "path reads");
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("oram.reads"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    EXPECT_EQ(group.counterValue("reads"), 42u);
    EXPECT_EQ(group.counterValue("absent"), 0u);
}

TEST(Table, FormatsAlignedColumns)
{
    TextTable table({"design", "overhead"});
    table.addRow({"PS-ORAM", TextTable::pct(0.0429)});
    table.addRow({"Naive", TextTable::pct(0.7392)});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("PS-ORAM"), std::string::npos);
    EXPECT_NE(out.find("+4.29%"), std::string::npos);
    EXPECT_NE(out.find("+73.92%"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

} // namespace
} // namespace psoram
