/**
 * @file
 * PosMap ORAM tree level unit tests: entry packing, PRF fallback,
 * stash-hit fast path, identity placement, and dirty-position tracking.
 */

#include <gtest/gtest.h>

#include "nvm/device.hh"

#include "oram/recursive_posmap.hh"

namespace psoram {
namespace {

class PomLevelTest : public ::testing::Test
{
  protected:
    PomLevelTest()
        : device_(pcmTimings(), 1, 8, 64ULL << 20),
          codec_(Aes128::Key{1, 2, 3}, CipherKind::FastStream),
          rng_(5)
    {
        PosMapTreeLevel::Params params;
        params.layout.geometry = TreeGeometry{4, 4};
        params.layout.base = 0;
        params.num_entry_blocks = 64;
        params.stash_capacity = 32;
        params.seed = 9;
        const std::uint64_t leaves = params.layout.geometry.numLeaves();
        level_ = std::make_unique<PosMapTreeLevel>(
            params, device_, codec_, rng_,
            [leaves](std::uint64_t idx) {
                return initialPath(42, idx, leaves);
            });
    }

    /** Apply the level's eviction writes straight to the device. */
    void
    applyWrites(const PosMapTreeLevel::AccessOutcome &outcome)
    {
        for (const auto &write : outcome.writes)
            device_.writeBytes(write.addr, write.data.data(),
                               write.data.size());
    }

    NvmDevice device_;
    BlockCodec codec_;
    Rng rng_;
    std::unique_ptr<PosMapTreeLevel> level_;
};

TEST_F(PomLevelTest, UnwrittenEntryReadsZeroWord)
{
    const auto outcome = level_->accessEntry(
        10, PersistentPosMap::encodeEntry(3), nullptr);
    EXPECT_EQ(outcome.old_word, 0u); // never written -> PRF fallback
    EXPECT_EQ(outcome.block_index, 10u / kEntriesPerPosBlock);
    applyWrites(outcome);
}

TEST_F(PomLevelTest, WriteThenReadBackEntry)
{
    auto first = level_->accessEntry(
        100, PersistentPosMap::encodeEntry(7), nullptr);
    applyWrites(first);
    auto second = level_->accessEntry(
        100, PersistentPosMap::encodeEntry(9), nullptr);
    applyWrites(second);
    EXPECT_EQ(second.old_word, PersistentPosMap::encodeEntry(7));
}

TEST_F(PomLevelTest, NeighborEntriesInSameBlockIndependent)
{
    // Entries 32 and 33 share entry block 2.
    applyWrites(level_->accessEntry(
        32, PersistentPosMap::encodeEntry(1), nullptr));
    applyWrites(level_->accessEntry(
        33, PersistentPosMap::encodeEntry(2), nullptr));
    auto a = level_->accessEntry(32, PersistentPosMap::encodeEntry(1),
                                 nullptr);
    applyWrites(a);
    EXPECT_EQ(a.old_word, PersistentPosMap::encodeEntry(1));
    auto b = level_->accessEntry(33, PersistentPosMap::encodeEntry(2),
                                 nullptr);
    applyWrites(b);
    EXPECT_EQ(b.old_word, PersistentPosMap::encodeEntry(2));
}

TEST_F(PomLevelTest, SameBlockConsecutiveAccessHitsStash)
{
    // After accessing entry 0, its block may remain in the stash if the
    // eviction could not re-place it; force that situation by NOT
    // applying the eviction writes... actually the entry block is
    // placed back; instead access twice in a row and check the counter
    // only when the stash holds it.
    auto first = level_->accessEntry(
        0, PersistentPosMap::encodeEntry(1), nullptr);
    applyWrites(first);
    if (level_->stash().find(0) != nullptr) {
        const auto hits_before = level_->stashHits();
        auto second = level_->accessEntry(
            1, PersistentPosMap::encodeEntry(2), nullptr);
        applyWrites(second);
        EXPECT_GT(level_->stashHits(), hits_before);
        EXPECT_TRUE(second.stash_hit);
        EXPECT_TRUE(second.writes.empty());
    }
}

TEST_F(PomLevelTest, AccessReadsWholePath)
{
    int reads = 0;
    auto outcome = level_->accessEntry(
        5, PersistentPosMap::encodeEntry(1),
        [&](Addr) { ++reads; });
    applyWrites(outcome);
    const unsigned per_path = TreeGeometry{4, 4}.blocksPerPath();
    EXPECT_EQ(static_cast<unsigned>(reads), per_path);
    EXPECT_EQ(outcome.slots_read, per_path);
    EXPECT_EQ(outcome.writes.size(), per_path);
}

TEST_F(PomLevelTest, RemapChangesBlockPosition)
{
    const std::uint64_t block = 3;
    const PathId before = level_->blockPosition(block);
    auto outcome = level_->accessEntry(
        block * kEntriesPerPosBlock, PersistentPosMap::encodeEntry(1),
        nullptr);
    applyWrites(outcome);
    EXPECT_EQ(level_->blockPosition(block), outcome.new_block_pos);
    // The accessed path is the pre-remap position.
    EXPECT_EQ(outcome.accessed_leaf, before);
}

TEST_F(PomLevelTest, DirtyPositionLifecycle)
{
    const std::uint64_t block = 2;
    EXPECT_FALSE(level_->isPositionDirty(block));
    auto outcome = level_->accessEntry(
        block * kEntriesPerPosBlock, PersistentPosMap::encodeEntry(4),
        nullptr);
    applyWrites(outcome);
    EXPECT_TRUE(level_->isPositionDirty(block));
    level_->clearPositionDirty(block);
    EXPECT_FALSE(level_->isPositionDirty(block));
}

TEST_F(PomLevelTest, PlacedListCoversWrittenRealBlocks)
{
    auto outcome = level_->accessEntry(
        20, PersistentPosMap::encodeEntry(1), nullptr);
    applyWrites(outcome);
    bool target_placed = false;
    for (const auto &[idx, pos] : outcome.placed)
        if (idx == 20u / kEntriesPerPosBlock) {
            target_placed = true;
            EXPECT_EQ(pos, outcome.new_block_pos);
        }
    // Either placed on the path or left in the stash.
    EXPECT_EQ(target_placed,
              level_->stash().find(20 / kEntriesPerPosBlock) ==
                  nullptr);
}

TEST_F(PomLevelTest, LoseVolatileStateResetsEverything)
{
    applyWrites(level_->accessEntry(
        7, PersistentPosMap::encodeEntry(1), nullptr));
    level_->loseVolatileState();
    EXPECT_TRUE(level_->stash().empty());
    // Positions fall back to the resolver.
    EXPECT_EQ(level_->blockPosition(0), initialPath(42, 0, 16));
}

TEST_F(PomLevelTest, ManyAccessesKeepStashSmall)
{
    Rng addr_rng(99);
    for (int op = 0; op < 2000; ++op) {
        auto outcome = level_->accessEntry(
            addr_rng.nextBelow(64 * kEntriesPerPosBlock),
            PersistentPosMap::encodeEntry(
                static_cast<PathId>(op % 16)),
            nullptr);
        applyWrites(outcome);
    }
    EXPECT_LT(level_->stash().peakSize(), 32u);
    EXPECT_EQ(level_->stash().overflowEvents(), 0u);
}

} // namespace
} // namespace psoram
