/**
 * @file
 * Load-generator tests: seeded determinism of RequestStream (identical
 * arrival times and key sequences for identical configs, reset()
 * restarts the stream), statistical shape of the generated traffic
 * (chi-square goodness-of-fit for the Zipfian sampler, Poisson
 * interarrival mean, hot-set split, read/write mix), and the
 * per-submitter seed derivation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "serve/request_stream.hh"

namespace psoram::serve {
namespace {

StreamConfig
baseConfig()
{
    StreamConfig config;
    config.mode = ArrivalMode::OpenLoop;
    config.dist = KeyDist::Zipfian;
    config.num_keys = 4096;
    config.offered_rate = 1e6;
    config.seed = 42;
    return config;
}

TEST(RequestStream, SameSeedSameSequence)
{
    const StreamConfig config = baseConfig();
    RequestStream a(config);
    RequestStream b(config);
    Request ra, rb;
    for (int i = 0; i < 2000; ++i) {
        a.next(ra);
        b.next(rb);
        ASSERT_EQ(ra.arrival_ns, rb.arrival_ns) << "request " << i;
        ASSERT_EQ(ra.is_write, rb.is_write) << "request " << i;
        ASSERT_EQ(ra.keys, rb.keys) << "request " << i;
    }
}

TEST(RequestStream, ResetReplaysIdentically)
{
    RequestStream stream(baseConfig());
    Request request;
    std::vector<std::uint64_t> arrivals;
    std::vector<BlockAddr> keys;
    for (int i = 0; i < 500; ++i) {
        stream.next(request);
        arrivals.push_back(request.arrival_ns);
        keys.push_back(request.keys[0]);
    }
    stream.reset();
    for (int i = 0; i < 500; ++i) {
        stream.next(request);
        ASSERT_EQ(request.arrival_ns, arrivals[i]) << "request " << i;
        ASSERT_EQ(request.keys[0], keys[i]) << "request " << i;
    }
}

TEST(RequestStream, DifferentSeedsDiverge)
{
    StreamConfig config = baseConfig();
    RequestStream a(config);
    config.seed = 43;
    RequestStream b(config);
    Request ra, rb;
    int diff = 0;
    for (int i = 0; i < 200; ++i) {
        a.next(ra);
        b.next(rb);
        diff += ra.keys[0] != rb.keys[0] ||
                ra.arrival_ns != rb.arrival_ns;
    }
    EXPECT_GT(diff, 150) << "seeds barely change the stream";
}

TEST(RequestStream, ArrivalsAreMonotoneAndKeysInRange)
{
    const StreamConfig config = baseConfig();
    RequestStream stream(config);
    Request request;
    std::uint64_t previous = 0;
    for (int i = 0; i < 5000; ++i) {
        stream.next(request);
        EXPECT_GE(request.arrival_ns, previous);
        previous = request.arrival_ns;
        for (const BlockAddr key : request.keys)
            ASSERT_LT(key, config.num_keys);
    }
}

TEST(RequestStream, PoissonInterarrivalMeanMatchesRate)
{
    // rate 1e6/s => mean interarrival 1000 ns. With 100k samples the
    // standard error of the mean is ~3 ns, so a 5% band is ~15 sigma.
    StreamConfig config = baseConfig();
    config.read_fraction = 1.0;
    RequestStream stream(config);
    Request request;
    const int n = 100'000;
    std::uint64_t last = 0;
    for (int i = 0; i < n; ++i)
        stream.next(request);
    last = request.arrival_ns;
    const double mean = static_cast<double>(last) / n;
    EXPECT_NEAR(mean, 1000.0, 50.0);
}

TEST(RequestStream, ReadWriteMixAndBatchShape)
{
    StreamConfig config = baseConfig();
    config.read_fraction = 0.8;
    config.batch_size = 4;
    RequestStream stream(config);
    Request request;
    const int n = 20'000;
    int writes = 0;
    for (int i = 0; i < n; ++i) {
        stream.next(request);
        if (request.is_write) {
            ++writes;
            ASSERT_EQ(request.keys.size(), 1u)
                << "writes must stay single-key";
        } else {
            ASSERT_EQ(request.keys.size(), 4u);
        }
    }
    const double write_fraction = static_cast<double>(writes) / n;
    EXPECT_NEAR(write_fraction, 0.2, 0.02);
}

TEST(RequestStream, HotSetFractionLandsOnHotKeys)
{
    StreamConfig config = baseConfig();
    config.dist = KeyDist::HotSet;
    config.hot_fraction = 0.9;
    config.hot_keys = 16;
    RequestStream stream(config);
    Request request;

    // Identify the hot set from a prefix, then check the split. The
    // 16 hottest keys collectively draw 90% of 40k requests, so each
    // appears ~2250 times; any cold key appears ~1 time.
    std::map<BlockAddr, int> counts;
    const int n = 40'000;
    for (int i = 0; i < n; ++i) {
        stream.next(request);
        for (const BlockAddr key : request.keys)
            ++counts[key];
    }
    std::vector<std::pair<int, BlockAddr>> by_count;
    for (const auto &[key, count] : counts)
        by_count.emplace_back(count, key);
    std::sort(by_count.rbegin(), by_count.rend());
    ASSERT_GE(by_count.size(), 16u);
    long hot_total = 0;
    for (int i = 0; i < 16; ++i)
        hot_total += by_count[i].first;
    const long total = [&] {
        long t = 0;
        for (const auto &[count, key] : by_count)
            t += count;
        return t;
    }();
    EXPECT_NEAR(static_cast<double>(hot_total) / total, 0.9, 0.03);
}

TEST(ZipfianSampler, ChiSquareGoodnessOfFit)
{
    // 50 ranks, 200k draws. The inversion is exact, so the statistic
    // follows chi-square with dof = 49; the p = 1e-4 critical value is
    // ~95.6. A broken sampler (off-by-one rank, wrong exponent,
    // un-normalized CDF) lands in the thousands.
    const std::uint64_t n = 50;
    const ZipfianSampler sampler(n, 0.99);
    Rng rng(1234);
    const int draws = 200'000;
    std::vector<int> observed(n, 0);
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t rank = sampler.nextRank(rng);
        ASSERT_LT(rank, n);
        ++observed[rank];
    }
    double chi2 = 0.0;
    double total_p = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
        const double expected = sampler.rankProbability(k) * draws;
        ASSERT_GT(expected, 5.0) << "rank " << k
                                 << ": chi-square precondition";
        const double delta = observed[k] - expected;
        chi2 += delta * delta / expected;
        total_p += sampler.rankProbability(k);
    }
    EXPECT_NEAR(total_p, 1.0, 1e-9) << "probabilities must sum to 1";
    EXPECT_LT(chi2, 95.6) << "Zipfian sample rejects at p=1e-4";
    // Rank 0 must dominate: p(0)/p(1) = 2^0.99 ~ 1.99.
    EXPECT_GT(observed[0], observed[1]);
}

TEST(ZipfianSampler, RankZeroIsMostPopular)
{
    const ZipfianSampler sampler(1000, 0.99);
    double previous = sampler.rankProbability(0);
    for (std::uint64_t k = 1; k < 1000; ++k) {
        const double p = sampler.rankProbability(k);
        EXPECT_LT(p, previous) << "rank " << k;
        previous = p;
    }
}

TEST(RequestStream, DerivedSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (unsigned s = 0; s < 64; ++s) {
        const std::uint64_t derived = deriveStreamSeed(7, s);
        EXPECT_EQ(derived, deriveStreamSeed(7, s));
        EXPECT_TRUE(seen.insert(derived).second)
            << "submitter seeds collide at " << s;
    }
    EXPECT_NE(deriveStreamSeed(7, 3), deriveStreamSeed(8, 3));
}

TEST(RequestStream, ZipfianScrambleSpreadsHotKeys)
{
    // The most popular ranks must not collapse onto consecutive
    // addresses (which would pin every hot key to one shard under
    // range partitioning and to few shards under interleave).
    StreamConfig config = baseConfig();
    config.read_fraction = 1.0;
    config.batch_size = 1;
    RequestStream stream(config);
    Request request;
    std::map<BlockAddr, int> counts;
    for (int i = 0; i < 20'000; ++i) {
        stream.next(request);
        ++counts[request.keys[0]];
    }
    std::vector<std::pair<int, BlockAddr>> by_count;
    for (const auto &[key, count] : counts)
        by_count.emplace_back(count, key);
    std::sort(by_count.rbegin(), by_count.rend());
    ASSERT_GE(by_count.size(), 8u);
    // Top-8 hot keys spread across both parities (interleave shards).
    std::set<BlockAddr> parities;
    for (int i = 0; i < 8; ++i)
        parities.insert(by_count[i].second % 2);
    EXPECT_EQ(parities.size(), 2u) << "hot keys cluster on one parity";
}

} // namespace
} // namespace psoram::serve
