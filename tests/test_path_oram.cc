/**
 * @file
 * Classic Path ORAM controller tests: functional correctness against a
 * reference map, stash behaviour, protocol invariants, and the timing
 * plumbing.
 */

#include <gtest/gtest.h>

#include "nvm/device.hh"

#include <cstring>
#include <map>
#include <vector>

#include "common/random.hh"
#include "oram/controller.hh"

namespace psoram {
namespace {

PathOramParams
smallParams(unsigned height = 5, std::uint64_t blocks = 48,
            CipherKind cipher = CipherKind::Aes128Ctr)
{
    PathOramParams params;
    params.layout.geometry = TreeGeometry{height, 4};
    params.layout.base = 0;
    params.num_blocks = blocks;
    params.stash_capacity = 64;
    params.key = Aes128::Key{9, 8, 7, 6, 5, 4, 3, 2, 1};
    params.cipher = cipher;
    params.seed = 77;
    return params;
}

NvmDevice
makeDevice()
{
    return NvmDevice(pcmTimings(), 1, 8, 64ULL << 20);
}

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

TEST(PathOram, ReadOfUntouchedBlockIsZero)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(), device);
    std::uint8_t buf[kBlockDataBytes];
    std::memset(buf, 0xFF, sizeof(buf));
    oram.read(7, buf);
    for (const auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(PathOram, WriteThenReadBack)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(), device);
    std::uint8_t in[kBlockDataBytes], out[kBlockDataBytes];
    payload(3, 1, in);
    oram.write(3, in);
    oram.read(3, out);
    EXPECT_EQ(std::memcmp(in, out, kBlockDataBytes), 0);
}

TEST(PathOram, RandomWorkloadMatchesReferenceMap)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(), device);
    Rng rng(1);
    std::map<BlockAddr, std::uint32_t> reference;
    std::uint8_t buf[kBlockDataBytes];

    for (int op = 0; op < 2000; ++op) {
        const BlockAddr addr = rng.nextBelow(48);
        if (rng.nextBool(0.5)) {
            const auto version = static_cast<std::uint32_t>(op + 1);
            payload(addr, version, buf);
            oram.write(addr, buf);
            reference[addr] = version;
        } else {
            oram.read(addr, buf);
            std::uint32_t version = 0;
            std::memcpy(&version, buf + 8, sizeof(version));
            const auto it = reference.find(addr);
            EXPECT_EQ(version,
                      it == reference.end() ? 0u : it->second)
                << "op " << op << " addr " << addr;
        }
    }
}

TEST(PathOram, StashStaysBounded)
{
    NvmDevice device = makeDevice();
    PathOramParams params = smallParams(6, 120, CipherKind::FastStream);
    params.stash_capacity = 200;
    PathOramController oram(params, device);
    Rng rng(2);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 4000; ++op)
        oram.write(rng.nextBelow(120), buf);
    // The classic Path ORAM stash bound: occupancy stays tiny relative
    // to the tree (Ren et al. [50]).
    EXPECT_LT(oram.stash().peakSize(), 60u);
    EXPECT_EQ(oram.stash().overflowEvents(), 0u);
}

TEST(PathOram, EveryAccessRemapsThePath)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(6, 100,
                                        CipherKind::FastStream),
                            device);
    std::vector<PathId> observed;
    oram.setPathObserver([&](PathId leaf) { observed.push_back(leaf); });

    std::uint8_t buf[kBlockDataBytes] = {};
    // Touch many distinct blocks so the target is evicted between
    // accesses (a stash-resident block short-circuits at step 1).
    for (int round = 0; round < 50; ++round) {
        oram.write(5, buf);
        for (BlockAddr filler = 10; filler < 40; ++filler)
            oram.write(filler, buf);
    }
    // Collect the leaves observed for block 5's accesses: they are at
    // positions 0, 31, 62, ... of the observation stream.
    std::vector<PathId> leaves_of_5;
    for (std::size_t i = 0; i < observed.size(); i += 31)
        leaves_of_5.push_back(observed[i]);
    ASSERT_GE(leaves_of_5.size(), 40u);
    // Re-accessing the same block must not reuse the same leaf
    // systematically.
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < leaves_of_5.size(); ++i)
        repeats += (leaves_of_5[i] == leaves_of_5[i - 1]);
    EXPECT_LT(repeats, leaves_of_5.size() / 4);
}

TEST(PathOram, StashHitSkipsMemory)
{
    NvmDevice device = makeDevice();
    // Z = 1 buckets create eviction contention, so accesses routinely
    // leave their block in the stash.
    PathOramParams params = smallParams();
    params.layout.geometry = TreeGeometry{5, 1};
    params.num_blocks = 20;
    PathOramController oram(params, device);
    std::uint8_t buf[kBlockDataBytes] = {};
    Rng rng(3);
    // Keep writing until some access leaves its block in the stash
    // (eviction to the common prefix frequently fails at the root).
    for (int op = 0; op < 200; ++op) {
        const BlockAddr addr = rng.nextBelow(20);
        oram.write(addr, buf);
        if (!oram.stash().find(addr))
            continue;
        const std::uint64_t reads_before = device.totalReads();
        const OramAccessInfo info = oram.read(addr, buf);
        EXPECT_TRUE(info.stash_hit);
        EXPECT_EQ(device.totalReads(), reads_before);
        EXPECT_GE(oram.stashHits(), 1u);
        return;
    }
    FAIL() << "no access ever left its block in the stash";
}

TEST(PathOram, PathAccessTrafficIsConstant)
{
    NvmDevice device = makeDevice();
    const PathOramParams params = smallParams(5, 48,
                                              CipherKind::FastStream);
    PathOramController oram(params, device);
    const unsigned per_path = params.layout.geometry.blocksPerPath();

    std::uint8_t buf[kBlockDataBytes] = {};
    std::uint64_t last_reads = 0, last_writes = 0;
    Rng rng(5);
    for (int op = 0; op < 100; ++op) {
        const BlockAddr addr = rng.nextBelow(48);
        if (oram.stash().find(addr))
            continue; // stash hit: no memory traffic by design
        oram.write(addr, buf);
        EXPECT_EQ(device.totalReads() - last_reads, per_path);
        EXPECT_EQ(device.totalWrites() - last_writes, per_path);
        last_reads = device.totalReads();
        last_writes = device.totalWrites();
    }
}

TEST(PathOram, AccessLatencyIsPositiveAndBounded)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(5, 48, CipherKind::FastStream),
                            device);
    std::uint8_t buf[kBlockDataBytes] = {};
    const OramAccessInfo info = oram.write(1, buf);
    EXPECT_GT(info.nvm_cycles, 0u);
    // Sanity upper bound: a 24-block path costs far less than 100k
    // cycles.
    EXPECT_LT(info.nvm_cycles, 100000u);
}

TEST(PathOram, DebugFindLocatesEvictedBlock)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(), device);
    std::uint8_t in[kBlockDataBytes], out[kBlockDataBytes];
    payload(9, 5, in);
    oram.write(9, in);
    // Push block 9 out of the stash with other accesses.
    std::uint8_t buf[kBlockDataBytes] = {};
    for (BlockAddr a = 20; a < 44; ++a)
        oram.write(a, buf);
    if (!oram.stash().find(9)) {
        ASSERT_TRUE(oram.debugFindInTree(9, out));
        EXPECT_EQ(std::memcmp(in, out, kBlockDataBytes), 0);
    }
}

TEST(PathOram, CapacityOverflowIsFatal)
{
    NvmDevice device = makeDevice();
    PathOramParams params = smallParams(3, 1000);
    EXPECT_DEATH(PathOramController(params, device), "exceed");
}

TEST(PathOram, OutOfRangeAccessPanics)
{
    NvmDevice device = makeDevice();
    PathOramController oram(smallParams(5, 48), device);
    std::uint8_t buf[kBlockDataBytes] = {};
    EXPECT_DEATH(oram.read(48, buf), "beyond logical capacity");
}

} // namespace
} // namespace psoram
