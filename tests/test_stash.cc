/**
 * @file
 * Stash tests: lookup, backup coexistence (PS-ORAM step 4), occupancy
 * accounting and misuse detection.
 */

#include <gtest/gtest.h>

#include "oram/stash.hh"

namespace psoram {
namespace {

StashEntry
entry(BlockAddr addr, PathId path, bool backup = false)
{
    StashEntry e;
    e.addr = addr;
    e.path = path;
    e.is_backup = backup;
    e.data[0] = static_cast<std::uint8_t>(addr);
    return e;
}

TEST(Stash, InsertFindRemove)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(2, 20));
    ASSERT_NE(stash.find(1), nullptr);
    EXPECT_EQ(stash.find(1)->path, 10u);
    EXPECT_EQ(stash.find(3), nullptr);
    EXPECT_TRUE(stash.remove(1));
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_FALSE(stash.remove(1));
    EXPECT_EQ(stash.size(), 1u);
}

TEST(Stash, BackupCoexistsWithLiveEntry)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(1, 5, true)); // backup under the old path
    EXPECT_EQ(stash.size(), 2u);
    EXPECT_EQ(stash.find(1)->path, 10u);        // live
    EXPECT_EQ(stash.findBackup(1)->path, 5u);   // backup
    EXPECT_EQ(stash.liveSize(), 1u);
}

TEST(Stash, BackupReplacesOlderBackup)
{
    Stash stash(8);
    stash.insert(entry(1, 5, true));
    stash.insert(entry(1, 6, true));
    EXPECT_EQ(stash.size(), 1u);
    EXPECT_EQ(stash.findBackup(1)->path, 6u);
}

TEST(Stash, RemoveOnlyTouchesLiveEntry)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(1, 5, true));
    EXPECT_TRUE(stash.remove(1));
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_NE(stash.findBackup(1), nullptr);
}

TEST(Stash, DuplicateLiveInsertPanics)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    EXPECT_DEATH(stash.insert(entry(1, 11)), "duplicate");
}

TEST(Stash, DummyInsertPanics)
{
    Stash stash(8);
    StashEntry dummy;
    dummy.addr = kDummyBlockAddr;
    EXPECT_DEATH(stash.insert(dummy), "dummy");
}

TEST(Stash, OverflowEventsCounted)
{
    Stash stash(2);
    stash.insert(entry(1, 1));
    stash.insert(entry(2, 2));
    EXPECT_EQ(stash.overflowEvents(), 0u);
    stash.insert(entry(3, 3));
    EXPECT_EQ(stash.overflowEvents(), 1u);
    EXPECT_EQ(stash.peakSize(), 3u);
}

TEST(Stash, OccupancySampling)
{
    Stash stash(8);
    stash.insert(entry(1, 1));
    stash.sampleOccupancy();
    stash.insert(entry(2, 2));
    stash.insert(entry(3, 3));
    stash.sampleOccupancy();
    EXPECT_EQ(stash.occupancy().count(), 2u);
    EXPECT_DOUBLE_EQ(stash.occupancy().mean(), 2.0);
    EXPECT_DOUBLE_EQ(stash.occupancy().max(), 3.0);
}

TEST(Stash, ClearEmptiesEverything)
{
    Stash stash(8);
    stash.insert(entry(1, 1));
    stash.insert(entry(1, 2, true));
    stash.clear();
    EXPECT_TRUE(stash.empty());
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_EQ(stash.findBackup(1), nullptr);
}

TEST(Stash, RemoveAtSwapsWithLast)
{
    Stash stash(8);
    stash.insert(entry(1, 1));
    stash.insert(entry(2, 2));
    stash.insert(entry(3, 3));
    stash.removeAt(0);
    EXPECT_EQ(stash.size(), 2u);
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_NE(stash.find(2), nullptr);
    EXPECT_NE(stash.find(3), nullptr);
    EXPECT_DEATH(stash.removeAt(5), "out of range");
}

} // namespace
} // namespace psoram
