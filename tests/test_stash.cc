/**
 * @file
 * Stash tests: lookup, backup coexistence (PS-ORAM step 4), occupancy
 * accounting and misuse detection.
 */

#include <gtest/gtest.h>

#include "oram/stash.hh"

namespace psoram {
namespace {

StashEntry
entry(BlockAddr addr, PathId path, bool backup = false)
{
    StashEntry e;
    e.addr = addr;
    e.path = path;
    e.is_backup = backup;
    e.data[0] = static_cast<std::uint8_t>(addr);
    return e;
}

TEST(Stash, InsertFindRemove)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(2, 20));
    ASSERT_NE(stash.find(1), nullptr);
    EXPECT_EQ(stash.find(1)->path, 10u);
    EXPECT_EQ(stash.find(3), nullptr);
    EXPECT_TRUE(stash.remove(1));
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_FALSE(stash.remove(1));
    EXPECT_EQ(stash.size(), 1u);
}

TEST(Stash, BackupCoexistsWithLiveEntry)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(1, 5, true)); // backup under the old path
    EXPECT_EQ(stash.size(), 2u);
    EXPECT_EQ(stash.find(1)->path, 10u);        // live
    EXPECT_EQ(stash.findBackup(1)->path, 5u);   // backup
    EXPECT_EQ(stash.liveSize(), 1u);
}

TEST(Stash, BackupReplacesOlderBackup)
{
    Stash stash(8);
    stash.insert(entry(1, 5, true));
    stash.insert(entry(1, 6, true));
    EXPECT_EQ(stash.size(), 1u);
    EXPECT_EQ(stash.findBackup(1)->path, 6u);
}

TEST(Stash, RemoveOnlyTouchesLiveEntry)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(1, 5, true));
    EXPECT_TRUE(stash.remove(1));
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_NE(stash.findBackup(1), nullptr);
}

TEST(Stash, DuplicateLiveInsertPanics)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    EXPECT_DEATH(stash.insert(entry(1, 11)), "duplicate");
}

TEST(Stash, DummyInsertPanics)
{
    Stash stash(8);
    StashEntry dummy;
    dummy.addr = kDummyBlockAddr;
    EXPECT_DEATH(stash.insert(dummy), "dummy");
}

TEST(Stash, OverflowEventsCounted)
{
    Stash stash(2);
    stash.insert(entry(1, 1));
    stash.insert(entry(2, 2));
    EXPECT_EQ(stash.overflowEvents(), 0u);
    stash.insert(entry(3, 3));
    EXPECT_EQ(stash.overflowEvents(), 1u);
    EXPECT_EQ(stash.peakSize(), 3u);
}

TEST(Stash, OccupancySampling)
{
    Stash stash(8);
    stash.insert(entry(1, 1));
    stash.sampleOccupancy();
    stash.insert(entry(2, 2));
    stash.insert(entry(3, 3));
    stash.sampleOccupancy();
    EXPECT_EQ(stash.occupancy().count(), 2u);
    EXPECT_DOUBLE_EQ(stash.occupancy().mean(), 2.0);
    EXPECT_DOUBLE_EQ(stash.occupancy().max(), 3.0);
}

TEST(Stash, ClearEmptiesEverything)
{
    Stash stash(8);
    stash.insert(entry(1, 1));
    stash.insert(entry(1, 2, true));
    stash.clear();
    EXPECT_TRUE(stash.empty());
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_EQ(stash.findBackup(1), nullptr);
}

TEST(Stash, RemoveAtSwapsWithLast)
{
    Stash stash(8);
    stash.insert(entry(1, 1));
    stash.insert(entry(2, 2));
    stash.insert(entry(3, 3));
    stash.removeAt(0);
    EXPECT_EQ(stash.size(), 2u);
    EXPECT_EQ(stash.find(1), nullptr);
    EXPECT_NE(stash.find(2), nullptr);
    EXPECT_NE(stash.find(3), nullptr);
    EXPECT_DEATH(stash.removeAt(5), "out of range");
}

TEST(Stash, RemoveBackupOnlyTouchesBackup)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(1, 20, true));
    EXPECT_FALSE(stash.removeBackup(2)); // absent address
    EXPECT_TRUE(stash.removeBackup(1));
    EXPECT_EQ(stash.findBackup(1), nullptr);
    ASSERT_NE(stash.find(1), nullptr); // live entry untouched
    EXPECT_FALSE(stash.removeBackup(1)); // already gone
}

TEST(Stash, LiveSizeTracksBackupsAndRemovals)
{
    Stash stash(8);
    stash.insert(entry(1, 10));
    stash.insert(entry(2, 20));
    stash.insert(entry(1, 30, true));
    EXPECT_EQ(stash.size(), 3u);
    EXPECT_EQ(stash.liveSize(), 2u);

    // Replacing a backup changes neither size nor live size.
    stash.insert(entry(1, 40, true));
    EXPECT_EQ(stash.size(), 3u);
    EXPECT_EQ(stash.liveSize(), 2u);
    EXPECT_EQ(stash.findBackup(1)->path, 40u);

    EXPECT_TRUE(stash.removeBackup(1));
    EXPECT_EQ(stash.liveSize(), 2u);
    EXPECT_TRUE(stash.remove(2));
    EXPECT_EQ(stash.liveSize(), 1u);
    stash.clear();
    EXPECT_EQ(stash.liveSize(), 0u);
}

TEST(Stash, BackupReplacementKeepsOccupancyStats)
{
    // A duplicate backup replaces in place: peak size and overflow
    // accounting must not move (regression for the index refactor).
    Stash stash(2);
    stash.insert(entry(1, 10));
    stash.insert(entry(1, 20, true));
    EXPECT_EQ(stash.peakSize(), 2u);
    EXPECT_EQ(stash.overflowEvents(), 0u);
    stash.insert(entry(1, 30, true));
    stash.insert(entry(1, 40, true));
    EXPECT_EQ(stash.size(), 2u);
    EXPECT_EQ(stash.peakSize(), 2u);
    EXPECT_EQ(stash.overflowEvents(), 0u);
}

// The hash index must stay coherent through a long interleaving of
// inserts, keyed removals, positional (swap-with-last) removals and
// backup replacement: find()/findBackup() agree with a linear scan at
// every step.
TEST(Stash, IndexMatchesLinearScanUnderChurn)
{
    Stash stash(64);
    std::uint64_t rng = 12345;
    const auto next = [&rng] {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        return rng >> 33;
    };

    const auto scanFor = [&](BlockAddr addr,
                             bool backup) -> const StashEntry * {
        for (std::size_t i = 0; i < stash.size(); ++i)
            if (stash.at(i).addr == addr &&
                stash.at(i).is_backup == backup)
                return &stash.at(i);
        return nullptr;
    };

    for (int step = 0; step < 2000; ++step) {
        const BlockAddr addr = next() % 24;
        const bool backup = next() % 2 == 0;
        switch (next() % 4) {
        case 0:
            if (backup || scanFor(addr, false) == nullptr)
                stash.insert(entry(addr, static_cast<PathId>(next()),
                                   backup));
            break;
        case 1:
            EXPECT_EQ(stash.remove(addr),
                      scanFor(addr, false) != nullptr);
            break;
        case 2:
            EXPECT_EQ(stash.removeBackup(addr),
                      scanFor(addr, true) != nullptr);
            break;
        case 3:
            if (!stash.empty())
                stash.removeAt(next() % stash.size());
            break;
        }

        // Full cross-check of index vs scan for a sample of keys.
        for (BlockAddr a = 0; a < 24; ++a) {
            EXPECT_EQ(stash.find(a), scanFor(a, false)) << "addr " << a;
            EXPECT_EQ(stash.findBackup(a), scanFor(a, true))
                << "addr " << a;
        }
        std::size_t live = 0;
        for (std::size_t i = 0; i < stash.size(); ++i)
            live += stash.at(i).is_backup ? 0 : 1;
        EXPECT_EQ(stash.liveSize(), live);
    }
}

} // namespace
} // namespace psoram
