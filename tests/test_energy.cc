/**
 * @file
 * Drain energy/time model tests against the paper's Table 2 values.
 */

#include <gtest/gtest.h>

#include "energy/drain_model.hh"

namespace psoram {
namespace {

TEST(DrainModel, EadrOramMatchesPaper)
{
    DrainModel model;
    const DrainCost cost = model.cost(DrainModel::eadrOram());
    // Paper: 2.286 J, 4.817 ms (193.07 MB inventory).
    EXPECT_NEAR(cost.energy_joules, 2.286, 0.05);
    EXPECT_NEAR(cost.time_seconds, 4.817e-3, 0.1e-3);
}

TEST(DrainModel, EadrCacheMatchesPaper)
{
    DrainModel model;
    const DrainCost cost = model.cost(DrainModel::eadrCache());
    // Paper: 12.653 mJ, 26.638 us.
    EXPECT_NEAR(cost.energy_joules, 12.653e-3, 0.2e-3);
    EXPECT_NEAR(cost.time_seconds, 26.638e-6, 0.5e-6);
}

TEST(DrainModel, PsOram96MatchesPaper)
{
    DrainModel model;
    const DrainCost cost = model.cost(DrainModel::psOramWpq(96));
    // Paper: 76.530 uJ, 161.134 ns (96 x (64 + 7) bytes).
    EXPECT_NEAR(cost.energy_joules, 76.53e-6, 1e-6);
    EXPECT_NEAR(cost.time_seconds, 161.1e-9, 5e-9);
}

TEST(DrainModel, PsOram4IsTiny)
{
    DrainModel model;
    const DrainCost cost = model.cost(DrainModel::psOramWpq(4));
    // Paper reports 2.83 uJ / 6.713 ns; the linear byte model gives
    // ~3.2 uJ / ~6.8 ns (see EXPERIMENTS.md).
    EXPECT_LT(cost.energy_joules, 4e-6);
    EXPECT_NEAR(cost.time_seconds, 6.76e-9, 1e-9);
}

TEST(DrainModel, RatiosMatchTable2Magnitudes)
{
    DrainModel model;
    const double ps96 =
        model.cost(DrainModel::psOramWpq(96)).energy_joules;
    const double eadr_oram =
        model.cost(DrainModel::eadrOram()).energy_joules;
    const double eadr_cache =
        model.cost(DrainModel::eadrCache()).energy_joules;
    // Paper: eADR-ORAM ~29870x, eADR-cache ~165x vs PS-ORAM(96).
    EXPECT_NEAR(eadr_oram / ps96, 29870.0, 1500.0);
    EXPECT_NEAR(eadr_cache / ps96, 165.0, 10.0);
}

TEST(DrainModel, EnergyScalesWithInventory)
{
    DrainModel model;
    DrainInventory small{"s", 0, 1000};
    DrainInventory large{"l", 0, 2000};
    EXPECT_NEAR(model.cost(large).energy_joules /
                    model.cost(small).energy_joules,
                2.0, 1e-9);
}

TEST(DrainModel, FormattersPickUnits)
{
    EXPECT_NE(formatEnergy(2.286).find("J"), std::string::npos);
    EXPECT_NE(formatEnergy(12.6e-3).find("mJ"), std::string::npos);
    EXPECT_NE(formatEnergy(76.5e-6).find("uJ"), std::string::npos);
    EXPECT_NE(formatTime(4.8e-3).find("ms"), std::string::npos);
    EXPECT_NE(formatTime(26.6e-6).find("us"), std::string::npos);
    EXPECT_NE(formatTime(161e-9).find("ns"), std::string::npos);
}

} // namespace
} // namespace psoram
