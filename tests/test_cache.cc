/**
 * @file
 * Cache and hierarchy tests: LRU set-associative behaviour, write-back
 * victims, and the L1/L2 miss path feeding the ORAM frontend.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/core.hh"
#include "mem/hierarchy.hh"

namespace psoram {
namespace {

CacheParams
smallCache(unsigned assoc = 2, std::uint64_t size = 1024)
{
    CacheParams params;
    params.name = "test";
    params.size_bytes = size;
    params.associativity = assoc;
    params.line_bytes = 64;
    params.latency = 2;
    return params;
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(1, false).hit);
    EXPECT_TRUE(cache.access(1, false).hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    // 1024B / 64B / 2-way = 8 sets. Lines 0, 8, 16 map to set 0.
    Cache cache(smallCache());
    cache.access(0, false);
    cache.access(8, false);
    cache.access(0, false);  // 0 is now MRU
    cache.access(16, false); // evicts 8 (LRU)
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(8));
    EXPECT_TRUE(cache.probe(16));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache cache(smallCache());
    cache.access(0, true); // dirty
    cache.access(8, false);
    const CacheAccessResult result = cache.access(16, false);
    ASSERT_TRUE(result.writeback_line.has_value());
    EXPECT_EQ(*result.writeback_line, 0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanVictimHasNoWriteback)
{
    Cache cache(smallCache());
    cache.access(0, false);
    cache.access(8, false);
    const CacheAccessResult result = cache.access(16, false);
    EXPECT_FALSE(result.writeback_line.has_value());
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache cache(smallCache());
    cache.access(0, false);
    cache.access(0, true); // becomes dirty via hit
    cache.access(8, false);
    const CacheAccessResult result = cache.access(16, false);
    ASSERT_TRUE(result.writeback_line.has_value());
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache(smallCache());
    cache.access(0, true);
    cache.flush();
    EXPECT_FALSE(cache.probe(0));
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(Cache, BadGeometryIsFatal)
{
    CacheParams params = smallCache();
    params.size_bytes = 100; // not a multiple
    EXPECT_DEATH(Cache{params}, "multiple");
}

TEST(Hierarchy, L1HitLatency)
{
    CacheHierarchy hierarchy;
    int memory_calls = 0;
    const MemRequestHandler memory = [&](const MemRequest &) -> CpuCycle {
        ++memory_calls;
        return 100;
    };
    hierarchy.access(1, false, memory); // cold miss -> memory
    EXPECT_EQ(memory_calls, 1);
    const CpuCycle lat = hierarchy.access(1, false, memory);
    EXPECT_EQ(memory_calls, 1);
    EXPECT_EQ(lat, 2u); // Table 3a: L1 2-cycle
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchy hierarchy;
    int memory_calls = 0;
    const MemRequestHandler memory = [&](const MemRequest &) -> CpuCycle {
        ++memory_calls;
        return 0;
    };
    // L1: 32KB/64B/2-way = 256 sets; lines n*256 collide in L1 set 0
    // but land in different L2 sets (L2 has 2048 sets).
    hierarchy.access(0, false, memory);
    hierarchy.access(256, false, memory);
    hierarchy.access(512, false, memory); // L1 set 0 full; 0 evicted
    const int calls_before = memory_calls;
    const CpuCycle lat = hierarchy.access(0, false, memory);
    EXPECT_EQ(memory_calls, calls_before); // L2 hit, no memory
    EXPECT_EQ(lat, 2u + 20u);
}

TEST(Hierarchy, DirtyL2VictimGoesToMemoryAsWrite)
{
    CacheHierarchy hierarchy;
    std::vector<MemRequest> requests;
    const MemRequestHandler memory =
        [&](const MemRequest &request) -> CpuCycle {
        requests.push_back(request);
        return 0;
    };
    // Fill one L2 set (2048 sets, 8 ways): lines n*2048 collide.
    hierarchy.access(0, true, memory); // dirty in L1, will sink to L2
    // Force 0 out of L1 first so the dirty bit reaches L2.
    hierarchy.access(2048 * 1, false, memory);
    hierarchy.access(2048 * 2, false, memory);
    // ... now overflow the L2 set with 8 more distinct lines.
    for (int i = 3; i <= 9; ++i)
        hierarchy.access(2048 * i, false, memory);
    bool saw_writeback = false;
    for (const MemRequest &request : requests)
        saw_writeback |= request.is_write;
    EXPECT_TRUE(saw_writeback);
}

TEST(Hierarchy, LlcMissCounterTracksL2Misses)
{
    CacheHierarchy hierarchy;
    const MemRequestHandler memory = [](const MemRequest &) -> CpuCycle {
        return 0;
    };
    for (BlockAddr line = 0; line < 100; ++line)
        hierarchy.access(line, false, memory);
    EXPECT_EQ(hierarchy.llcMisses(), 100u);
    for (BlockAddr line = 0; line < 100; ++line)
        hierarchy.access(line, false, memory);
    EXPECT_EQ(hierarchy.llcMisses(), 100u); // all hits
}

TEST(Core, RunsTraceAndAccountsCycles)
{
    struct FixedTrace : TraceStream
    {
        int remaining = 10;
        bool
        next(TraceRecord &out) override
        {
            if (remaining-- <= 0)
                return false;
            out.gap = 5;
            out.line = static_cast<BlockAddr>(remaining) * 2048;
            out.is_write = false;
            return true;
        }
        void reset() override { remaining = 10; }
    };

    CacheHierarchy hierarchy;
    InOrderCore core(hierarchy);
    FixedTrace trace;
    const MemRequestHandler memory = [](const MemRequest &) -> CpuCycle {
        return 1000;
    };
    const CoreRunStats stats = core.run(trace, memory);
    EXPECT_EQ(stats.instructions, 50u);
    EXPECT_EQ(stats.mem_accesses, 10u);
    EXPECT_EQ(stats.llc_misses, 10u);
    // 50 instruction cycles + 10 * (2 + 20 + 1000) memory cycles.
    EXPECT_EQ(stats.cycles, 50u + 10u * 1022u);
    EXPECT_NEAR(stats.mpki(), 200.0, 1e-9);
}

} // namespace
} // namespace psoram
