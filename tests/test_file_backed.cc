/**
 * @file
 * FileBackedNvm tests: image round-trip through the backing file, and
 * the headline crash-consistency scenario across a simulated *process*
 * restart — the controller and device objects are destroyed and rebuilt
 * from nothing but the persisted NVM image.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "nvm/file_backed.hh"
#include "nvm/timing.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

std::string
scratchPath(const char *name)
{
    return ::testing::TempDir() + name;
}

TEST(FileBackedNvm, ImageRoundTripsThroughFile)
{
    const std::string path = scratchPath("psnvm_roundtrip.img");
    std::remove(path.c_str());

    std::uint8_t payload[96];
    for (std::size_t i = 0; i < sizeof(payload); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 3 + 1);

    {
        FileBackedNvm device(pcmTimings(), 1, 8, 1 << 20, path);
        EXPECT_EQ(device.linesLoaded(), 0u);
        device.writeBytes(37, payload, sizeof(payload)); // unaligned
        ASSERT_TRUE(device.persist());
    }

    {
        FileBackedNvm device(pcmTimings(), 1, 8, 1 << 20, path);
        EXPECT_GT(device.linesLoaded(), 0u);
        std::uint8_t back[96] = {};
        device.readBytes(37, back, sizeof(back));
        EXPECT_EQ(std::memcmp(back, payload, sizeof(payload)), 0);
        device.discardBackingFile();
    }
}

TEST(FileBackedNvm, DestructorPersistsOnCleanShutdown)
{
    const std::string path = scratchPath("psnvm_dtor.img");
    std::remove(path.c_str());
    const std::uint8_t v = 0x5A;
    {
        FileBackedNvm device(pcmTimings(), 1, 8, 1 << 20, path);
        device.writeBytes(4096, &v, 1);
        // No explicit persist(): the destructor flushes.
    }
    {
        FileBackedNvm device(pcmTimings(), 1, 8, 1 << 20, path);
        std::uint8_t back = 0;
        device.readBytes(4096, &back, 1);
        EXPECT_EQ(back, v);
        device.discardBackingFile();
    }
}

TEST(FileBackedNvm, DiscardSuppressesDestructorPersist)
{
    const std::string path = scratchPath("psnvm_discard.img");
    std::remove(path.c_str());
    {
        FileBackedNvm device(pcmTimings(), 1, 8, 1 << 20, path);
        const std::uint8_t v = 1;
        device.writeBytes(0, &v, 1);
        device.discardBackingFile();
    }
    std::ifstream probe(path, std::ios::binary);
    EXPECT_FALSE(probe.good());
}

/** The crash demo: PS-ORAM state survives a full process restart. */
TEST(FileBackedNvm, CrashRecoveryAcrossProcessRestart)
{
    const std::string path = scratchPath("psnvm_process.img");
    std::remove(path.c_str());

    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 6;
    config.num_blocks = 100;
    config.stash_capacity = 64;
    config.seed = 11;
    config.backing_file = path;

    constexpr BlockAddr kBlocks = 40;
    std::uint8_t buf[kBlockDataBytes] = {};

    // "Process 1": run a write workload, power-fail, flush ADR, persist
    // the NVM image to disk, then destroy every object.
    {
        System system = buildSystem(config);
        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            std::memset(buf, 0, sizeof(buf));
            std::memcpy(buf, &addr, sizeof(addr));
            system.controller->write(addr, buf);
        }
        system.controller->powerFailureFlush();
        auto *file_nvm =
            dynamic_cast<FileBackedNvm *>(system.device.get());
        ASSERT_NE(file_nvm, nullptr);
        ASSERT_TRUE(file_nvm->persist());
    }

    // "Process 2": rebuild from the image alone and recover. Every
    // write above completed (its eviction round committed), so every
    // block must come back intact.
    {
        System system = buildSystem(config);
        auto *file_nvm =
            dynamic_cast<FileBackedNvm *>(system.device.get());
        ASSERT_NE(file_nvm, nullptr);
        EXPECT_GT(file_nvm->linesLoaded(), 0u);

        system.controller->recoverFromNvm();
        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            std::memset(buf, 0xFF, sizeof(buf));
            system.controller->read(addr, buf);
            BlockAddr stored = 0;
            std::memcpy(&stored, buf, sizeof(stored));
            EXPECT_EQ(stored, addr) << "block " << addr
                                    << " lost across restart";
        }
        file_nvm->discardBackingFile();
    }
}

} // namespace
} // namespace psoram
