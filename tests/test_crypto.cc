/**
 * @file
 * Crypto substrate tests: AES-128 against FIPS-197 / NIST known-answer
 * vectors and CTR-mode / fast-stream behaviour.
 *
 * Every known-answer test runs twice — once on the scalar reference
 * path and once on the dispatched (AES-NI where available) path — via
 * the Aes128::forceScalar() hook, so both backends are pinned to the
 * NIST vectors and to each other.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes128.hh"
#include "crypto/ctr.hh"
#include "crypto/gcm.hh"
#include "crypto/sha256.hh"

namespace psoram {
namespace {

Aes128::Key
keyFromBytes(std::initializer_list<std::uint8_t> bytes)
{
    Aes128::Key key{};
    std::size_t i = 0;
    for (const auto b : bytes)
        key[i++] = b;
    return key;
}

/** Run @p body under both cipher backends (scalar + dispatched). */
template <typename Fn>
void
onBothPaths(Fn &&body)
{
    Aes128::forceScalar(true);
    body("scalar");
    Aes128::forceScalar(false);
    body(Aes128::aesniAvailable() ? "aesni" : "scalar-dispatch");
    Aes128::forceScalar(false);
}

// FIPS-197 Appendix B: single-block known-answer test.
TEST(Aes128, Fips197AppendixB)
{
    const Aes128::Key key = keyFromBytes(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
    Aes128::Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                               0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                               0x07, 0x34};
    const Aes128::Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                    0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                    0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(plaintext), expected) << path;
    });
}

// FIPS-197 Appendix C.1: the sequential-byte example vector.
TEST(Aes128, Fips197AppendixC1)
{
    Aes128::Key key{};
    Aes128::Block plaintext{};
    for (std::size_t i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        plaintext[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    const Aes128::Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                    0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                    0x70, 0xb4, 0xc5, 0x5a};
    Aes128 aes(key);
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(plaintext), expected) << path;
    });
}

// NIST SP 800-38A F.1.1 ECB-AES128 vectors (first two blocks).
TEST(Aes128, Sp80038aEcbVectors)
{
    const Aes128::Key key = keyFromBytes(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
    Aes128 aes(key);

    const Aes128::Block p1 = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f,
                              0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                              0x17, 0x2a};
    const Aes128::Block c1 = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36,
                              0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
                              0xef, 0x97};
    EXPECT_EQ(aes.encrypt(p1), c1);

    const Aes128::Block p2 = {0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac,
                              0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
                              0x8e, 0x51};
    const Aes128::Block c2 = {0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69,
                              0x9d, 0xe7, 0x85, 0x89, 0x5a, 0x96, 0xfd,
                              0xba, 0xaf};
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(p1), c1) << path;
        EXPECT_EQ(aes.encrypt(p2), c2) << path;
    });
}

TEST(Aes128, AllZeroKeyVector)
{
    // NIST known-answer: AES-128(0^128 key, 0^128 block).
    Aes128 aes(Aes128::Key{});
    const Aes128::Block expected = {0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a,
                                    0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59,
                                    0xca, 0x34, 0x2b, 0x2e};
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(Aes128::Block{}), expected) << path;
    });
}

// The batched entry point must equal block-at-a-time encryption for
// every count that exercises the pipelined groups and the remainder
// loop, on both backends.
TEST(Aes128, BatchedMatchesSingleBlocks)
{
    const Aes128::Key key = keyFromBytes({9, 8, 7, 6, 5, 4, 3, 2, 1});
    Aes128 aes(key);
    for (const std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u}) {
        std::vector<Aes128::Block> batch(count);
        std::vector<Aes128::Block> singles(count);
        for (std::size_t b = 0; b < count; ++b)
            for (std::size_t i = 0; i < 16; ++i)
                batch[b][i] = singles[b][i] =
                    static_cast<std::uint8_t>(b * 31 + i);

        onBothPaths([&](const char *path) {
            std::vector<Aes128::Block> work = batch;
            aes.encryptBlocks(work.data(), count);
            std::vector<Aes128::Block> ref = singles;
            Aes128::forceScalar(true); // singles via the reference path
            for (auto &block : ref)
                aes.encryptBlock(block);
            Aes128::forceScalar(false);
            EXPECT_EQ(work, ref) << path << " count=" << count;
        });
    }
}

// Both backends must produce identical ciphertext on random-ish data
// (on hardware without AES-NI the dispatched path is also scalar, so
// the test degenerates to a self-check).
TEST(Aes128, AesniMatchesScalar)
{
    const Aes128::Key key = keyFromBytes(
        {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab,
         0xcd, 0xef, 0x10, 0x32, 0x54, 0x76});
    Aes128 aes(key);
    std::vector<Aes128::Block> blocks(11);
    for (std::size_t b = 0; b < blocks.size(); ++b)
        for (std::size_t i = 0; i < 16; ++i)
            blocks[b][i] = static_cast<std::uint8_t>(b * 131 + i * 7);

    std::vector<Aes128::Block> scalar_out = blocks;
    Aes128::forceScalar(true);
    aes.encryptBlocks(scalar_out.data(), scalar_out.size());
    Aes128::forceScalar(false);

    std::vector<Aes128::Block> dispatched_out = blocks;
    aes.encryptBlocks(dispatched_out.data(), dispatched_out.size());

    EXPECT_EQ(scalar_out, dispatched_out);
}

TEST(CtrCipher, RoundTripIsIdentity)
{
    const Aes128::Key key = keyFromBytes({1, 2, 3, 4, 5, 6, 7, 8});
    CtrCipher cipher(key);
    std::uint8_t data[100];
    for (int i = 0; i < 100; ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    std::uint8_t original[100];
    std::memcpy(original, data, sizeof(data));

    cipher.apply(0x1234, data, sizeof(data));
    EXPECT_NE(std::memcmp(data, original, sizeof(data)), 0);
    cipher.apply(0x1234, data, sizeof(data));
    EXPECT_EQ(std::memcmp(data, original, sizeof(data)), 0);
}

TEST(CtrCipher, DifferentIvsDifferentKeystreams)
{
    CtrCipher cipher(Aes128::Key{});
    std::uint8_t a[64] = {};
    std::uint8_t b[64] = {};
    cipher.apply(1, a, sizeof(a));
    cipher.apply(2, b, sizeof(b));
    EXPECT_NE(std::memcmp(a, b, sizeof(a)), 0);
}

TEST(CtrCipher, PartialBlockLengths)
{
    CtrCipher cipher(Aes128::Key{});
    for (const std::size_t len : {1u, 7u, 15u, 16u, 17u, 63u}) {
        std::vector<std::uint8_t> data(len, 0xAA);
        const std::vector<std::uint8_t> original = data;
        cipher.apply(99, data.data(), len);
        cipher.apply(99, data.data(), len);
        EXPECT_EQ(data, original) << "len=" << len;
    }
}

// The batched CTR keystream must be identical on both backends and
// across awkward lengths (the batch covers up to 8 counter blocks).
TEST(CtrCipher, BothPathsProduceIdenticalKeystream)
{
    CtrCipher cipher(keyFromBytes({42, 1, 42, 2, 42, 3}));
    for (const std::size_t len : {1u, 16u, 31u, 64u, 96u, 100u, 129u}) {
        std::vector<std::uint8_t> scalar_buf(len, 0);
        Aes128::forceScalar(true);
        cipher.apply(0xfeedbead, scalar_buf.data(), len);
        Aes128::forceScalar(false);

        std::vector<std::uint8_t> dispatched_buf(len, 0);
        cipher.apply(0xfeedbead, dispatched_buf.data(), len);

        EXPECT_EQ(scalar_buf, dispatched_buf) << "len=" << len;
    }
}

TEST(CtrCipher, PrefixConsistency)
{
    // The first 16 bytes of a 64-byte encryption equal a 16-byte
    // encryption with the same IV (counter-mode structure).
    CtrCipher cipher(Aes128::Key{});
    std::uint8_t longbuf[64] = {};
    std::uint8_t shortbuf[16] = {};
    cipher.apply(5, longbuf, sizeof(longbuf));
    cipher.apply(5, shortbuf, sizeof(shortbuf));
    EXPECT_EQ(std::memcmp(longbuf, shortbuf, 16), 0);
}

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(
            std::stoul(hex.substr(2 * i, 2), nullptr, 16));
    return out;
}

Gcm::Iv
ivFromHex(const std::string &hex)
{
    const std::vector<std::uint8_t> bytes = fromHex(hex);
    Gcm::Iv iv{};
    std::copy(bytes.begin(), bytes.end(), iv.begin());
    return iv;
}

Gcm::Tag
tagFromHex(const std::string &hex)
{
    const std::vector<std::uint8_t> bytes = fromHex(hex);
    Gcm::Tag tag{};
    std::copy(bytes.begin(), bytes.end(), tag.begin());
    return tag;
}

/** One NIST GCM known-answer case, checked seal-then-open. */
void
checkGcmVector(const std::string &key_hex, const std::string &iv_hex,
               const std::string &pt_hex, const std::string &aad_hex,
               const std::string &ct_hex, const std::string &tag_hex)
{
    const std::vector<std::uint8_t> key_bytes = fromHex(key_hex);
    Aes128::Key key{};
    std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
    const Gcm::Iv iv = ivFromHex(iv_hex);
    const std::vector<std::uint8_t> pt = fromHex(pt_hex);
    const std::vector<std::uint8_t> aad = fromHex(aad_hex);
    const std::vector<std::uint8_t> expected_ct = fromHex(ct_hex);
    const Gcm::Tag expected_tag = tagFromHex(tag_hex);

    const Gcm gcm(key);
    std::vector<std::uint8_t> ct(pt.size());
    const Gcm::Tag tag = gcm.seal(iv, aad.data(), aad.size(), pt.data(),
                                  ct.data(), pt.size());
    EXPECT_EQ(ct, expected_ct);
    EXPECT_EQ(tag, expected_tag);

    std::vector<std::uint8_t> decrypted(ct.size(), 0xEE);
    EXPECT_TRUE(gcm.open(iv, aad.data(), aad.size(), ct.data(),
                         decrypted.data(), ct.size(), expected_tag));
    EXPECT_EQ(decrypted, pt);
}

// NIST GCM test cases 1-4 (the canonical AES-128 vectors from the
// GCM submission, cross-checked against SP 800-38D validation data).
TEST(Gcm, NistKnownAnswerVectorsBothPaths)
{
    onBothPaths([&](const char *path) {
        SCOPED_TRACE(path);
        // Case 1: empty plaintext, empty AAD.
        checkGcmVector("00000000000000000000000000000000",
                       "000000000000000000000000", "", "", "",
                       "58e2fccefa7e3061367f1d57a4e7455a");
        // Case 2: one zero block.
        checkGcmVector("00000000000000000000000000000000",
                       "000000000000000000000000",
                       "00000000000000000000000000000000", "",
                       "0388dace60b6a392f328c2b971b2fe78",
                       "ab6e47d42cec13bdf53a67b21257bddf");
        // Case 3: four blocks, no AAD.
        checkGcmVector(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d"
            "8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657"
            "ba637b391aafd255",
            "",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e23"
            "29aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac97"
            "3d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4");
        // Case 4: 60-byte plaintext (partial final block) + AAD.
        checkGcmVector(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d"
            "8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657"
            "ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e23"
            "29aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac97"
            "3d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47");
    });
}

TEST(Gcm, RejectsWrongAad)
{
    const Gcm gcm(keyFromBytes({1, 2, 3, 4}));
    const Gcm::Iv iv{1};
    const std::uint8_t aad[] = {0xAA, 0xBB, 0xCC};
    std::uint8_t pt[40];
    for (std::size_t i = 0; i < sizeof(pt); ++i)
        pt[i] = static_cast<std::uint8_t>(i);
    std::uint8_t ct[40];
    const Gcm::Tag tag =
        gcm.seal(iv, aad, sizeof(aad), pt, ct, sizeof(pt));

    std::uint8_t out[40];
    std::uint8_t wrong_aad[] = {0xAA, 0xBB, 0xCD};
    EXPECT_FALSE(gcm.open(iv, wrong_aad, sizeof(wrong_aad), ct, out,
                          sizeof(ct), tag));
    // Shorter AAD (a "truncated AAD" splice) must also fail.
    EXPECT_FALSE(gcm.open(iv, aad, sizeof(aad) - 1, ct, out,
                          sizeof(ct), tag));
    EXPECT_TRUE(
        gcm.open(iv, aad, sizeof(aad), ct, out, sizeof(ct), tag));
}

TEST(Gcm, RejectsTruncatedOrTamperedTag)
{
    const Gcm gcm(keyFromBytes({7, 7, 7}));
    const Gcm::Iv iv{9};
    std::uint8_t pt[16] = {1, 2, 3};
    std::uint8_t ct[16];
    const Gcm::Tag tag = gcm.seal(iv, nullptr, 0, pt, ct, sizeof(pt));

    std::uint8_t out[16] = {};
    // A tag whose tail is zeroed (truncated-then-padded) must fail —
    // an attacker chopping the stored tag cannot shorten the check.
    Gcm::Tag truncated = tag;
    for (std::size_t i = 8; i < truncated.size(); ++i)
        truncated[i] = 0;
    EXPECT_FALSE(
        gcm.open(iv, nullptr, 0, ct, out, sizeof(ct), truncated));
    // Every single-bit flip of the tag must fail.
    for (const std::size_t byte : {0u, 5u, 15u}) {
        Gcm::Tag flipped = tag;
        flipped[byte] ^= 0x01;
        EXPECT_FALSE(
            gcm.open(iv, nullptr, 0, ct, out, sizeof(ct), flipped))
            << "byte " << byte;
    }
    // Flipped ciphertext under the correct tag must fail too, and the
    // plaintext buffer must stay untouched.
    std::uint8_t tampered_ct[16];
    std::memcpy(tampered_ct, ct, sizeof(ct));
    tampered_ct[3] ^= 0x80;
    std::memset(out, 0xEE, sizeof(out));
    EXPECT_FALSE(
        gcm.open(iv, nullptr, 0, tampered_ct, out, sizeof(out), tag));
    for (const std::uint8_t b : out)
        EXPECT_EQ(b, 0xEE);
}

TEST(Gcm, GmacIsDeterministicAndIvSensitive)
{
    const Gcm gcm(keyFromBytes({3, 1, 4, 1, 5}));
    const std::uint8_t aad[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    const Gcm::Iv iv_a{1};
    const Gcm::Iv iv_b{2};
    EXPECT_EQ(gcm.mac(iv_a, aad, sizeof(aad)),
              gcm.mac(iv_a, aad, sizeof(aad)));
    EXPECT_NE(gcm.mac(iv_a, aad, sizeof(aad)),
              gcm.mac(iv_b, aad, sizeof(aad)));
    // GMAC == full GCM tag with an empty plaintext.
    std::uint8_t empty = 0;
    const Gcm::Tag sealed =
        gcm.seal(iv_a, aad, sizeof(aad), &empty, &empty, 0);
    EXPECT_EQ(gcm.mac(iv_a, aad, sizeof(aad)), sealed);
}

Sha256::Digest
digestOf(const std::string &msg)
{
    return Sha256::digest(
        reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size());
}

// FIPS 180-4 known-answer vectors.
TEST(Sha256, KnownAnswerVectors)
{
    const auto expect = [](const Sha256::Digest &digest,
                           const std::string &hex) {
        const std::vector<std::uint8_t> want = fromHex(hex);
        EXPECT_TRUE(
            std::equal(digest.begin(), digest.end(), want.begin()));
    };
    expect(digestOf(""),
           "e3b0c44298fc1c149afbf4c8996fb924"
           "27ae41e4649b934ca495991b7852b855");
    expect(digestOf("abc"),
           "ba7816bf8f01cfea414140de5dae2223"
           "b00361a396177a9cb410ff61f20015ad");
    expect(digestOf("abcdbcdecdefdefgefghfghighijhijk"
                    "ijkljklmklmnlmnomnopnopq"),
           "248d6a61d20638b8e5c026930c3e6039"
           "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> msg(1000);
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 13);
    const Sha256::Digest oneshot = Sha256::digest(msg.data(), msg.size());

    // Feed in awkward chunk sizes that straddle block boundaries.
    Sha256 h;
    std::size_t off = 0;
    const std::size_t chunks[] = {1, 63, 64, 65, 7, 130, 670};
    for (const std::size_t chunk : chunks) {
        h.update(msg.data() + off, chunk);
        off += chunk;
    }
    ASSERT_EQ(off, msg.size());
    EXPECT_EQ(h.finish(), oneshot);

    h.reset();
    h.update(msg.data(), msg.size());
    EXPECT_EQ(h.finish(), oneshot);
}

} // namespace
} // namespace psoram
