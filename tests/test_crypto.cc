/**
 * @file
 * Crypto substrate tests: AES-128 against FIPS-197 / NIST known-answer
 * vectors and CTR-mode / fast-stream behaviour.
 *
 * Every known-answer test runs twice — once on the scalar reference
 * path and once on the dispatched (AES-NI where available) path — via
 * the Aes128::forceScalar() hook, so both backends are pinned to the
 * NIST vectors and to each other.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/aes128.hh"
#include "crypto/ctr.hh"

namespace psoram {
namespace {

Aes128::Key
keyFromBytes(std::initializer_list<std::uint8_t> bytes)
{
    Aes128::Key key{};
    std::size_t i = 0;
    for (const auto b : bytes)
        key[i++] = b;
    return key;
}

/** Run @p body under both cipher backends (scalar + dispatched). */
template <typename Fn>
void
onBothPaths(Fn &&body)
{
    Aes128::forceScalar(true);
    body("scalar");
    Aes128::forceScalar(false);
    body(Aes128::aesniAvailable() ? "aesni" : "scalar-dispatch");
    Aes128::forceScalar(false);
}

// FIPS-197 Appendix B: single-block known-answer test.
TEST(Aes128, Fips197AppendixB)
{
    const Aes128::Key key = keyFromBytes(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
    Aes128::Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                               0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                               0x07, 0x34};
    const Aes128::Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                    0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                    0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(plaintext), expected) << path;
    });
}

// FIPS-197 Appendix C.1: the sequential-byte example vector.
TEST(Aes128, Fips197AppendixC1)
{
    Aes128::Key key{};
    Aes128::Block plaintext{};
    for (std::size_t i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        plaintext[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    const Aes128::Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                    0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                    0x70, 0xb4, 0xc5, 0x5a};
    Aes128 aes(key);
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(plaintext), expected) << path;
    });
}

// NIST SP 800-38A F.1.1 ECB-AES128 vectors (first two blocks).
TEST(Aes128, Sp80038aEcbVectors)
{
    const Aes128::Key key = keyFromBytes(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
    Aes128 aes(key);

    const Aes128::Block p1 = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f,
                              0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                              0x17, 0x2a};
    const Aes128::Block c1 = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36,
                              0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
                              0xef, 0x97};
    EXPECT_EQ(aes.encrypt(p1), c1);

    const Aes128::Block p2 = {0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac,
                              0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
                              0x8e, 0x51};
    const Aes128::Block c2 = {0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69,
                              0x9d, 0xe7, 0x85, 0x89, 0x5a, 0x96, 0xfd,
                              0xba, 0xaf};
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(p1), c1) << path;
        EXPECT_EQ(aes.encrypt(p2), c2) << path;
    });
}

TEST(Aes128, AllZeroKeyVector)
{
    // NIST known-answer: AES-128(0^128 key, 0^128 block).
    Aes128 aes(Aes128::Key{});
    const Aes128::Block expected = {0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a,
                                    0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59,
                                    0xca, 0x34, 0x2b, 0x2e};
    onBothPaths([&](const char *path) {
        EXPECT_EQ(aes.encrypt(Aes128::Block{}), expected) << path;
    });
}

// The batched entry point must equal block-at-a-time encryption for
// every count that exercises the pipelined groups and the remainder
// loop, on both backends.
TEST(Aes128, BatchedMatchesSingleBlocks)
{
    const Aes128::Key key = keyFromBytes({9, 8, 7, 6, 5, 4, 3, 2, 1});
    Aes128 aes(key);
    for (const std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u}) {
        std::vector<Aes128::Block> batch(count);
        std::vector<Aes128::Block> singles(count);
        for (std::size_t b = 0; b < count; ++b)
            for (std::size_t i = 0; i < 16; ++i)
                batch[b][i] = singles[b][i] =
                    static_cast<std::uint8_t>(b * 31 + i);

        onBothPaths([&](const char *path) {
            std::vector<Aes128::Block> work = batch;
            aes.encryptBlocks(work.data(), count);
            std::vector<Aes128::Block> ref = singles;
            Aes128::forceScalar(true); // singles via the reference path
            for (auto &block : ref)
                aes.encryptBlock(block);
            Aes128::forceScalar(false);
            EXPECT_EQ(work, ref) << path << " count=" << count;
        });
    }
}

// Both backends must produce identical ciphertext on random-ish data
// (on hardware without AES-NI the dispatched path is also scalar, so
// the test degenerates to a self-check).
TEST(Aes128, AesniMatchesScalar)
{
    const Aes128::Key key = keyFromBytes(
        {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab,
         0xcd, 0xef, 0x10, 0x32, 0x54, 0x76});
    Aes128 aes(key);
    std::vector<Aes128::Block> blocks(11);
    for (std::size_t b = 0; b < blocks.size(); ++b)
        for (std::size_t i = 0; i < 16; ++i)
            blocks[b][i] = static_cast<std::uint8_t>(b * 131 + i * 7);

    std::vector<Aes128::Block> scalar_out = blocks;
    Aes128::forceScalar(true);
    aes.encryptBlocks(scalar_out.data(), scalar_out.size());
    Aes128::forceScalar(false);

    std::vector<Aes128::Block> dispatched_out = blocks;
    aes.encryptBlocks(dispatched_out.data(), dispatched_out.size());

    EXPECT_EQ(scalar_out, dispatched_out);
}

TEST(CtrCipher, RoundTripIsIdentity)
{
    const Aes128::Key key = keyFromBytes({1, 2, 3, 4, 5, 6, 7, 8});
    CtrCipher cipher(key);
    std::uint8_t data[100];
    for (int i = 0; i < 100; ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    std::uint8_t original[100];
    std::memcpy(original, data, sizeof(data));

    cipher.apply(0x1234, data, sizeof(data));
    EXPECT_NE(std::memcmp(data, original, sizeof(data)), 0);
    cipher.apply(0x1234, data, sizeof(data));
    EXPECT_EQ(std::memcmp(data, original, sizeof(data)), 0);
}

TEST(CtrCipher, DifferentIvsDifferentKeystreams)
{
    CtrCipher cipher(Aes128::Key{});
    std::uint8_t a[64] = {};
    std::uint8_t b[64] = {};
    cipher.apply(1, a, sizeof(a));
    cipher.apply(2, b, sizeof(b));
    EXPECT_NE(std::memcmp(a, b, sizeof(a)), 0);
}

TEST(CtrCipher, PartialBlockLengths)
{
    CtrCipher cipher(Aes128::Key{});
    for (const std::size_t len : {1u, 7u, 15u, 16u, 17u, 63u}) {
        std::vector<std::uint8_t> data(len, 0xAA);
        const std::vector<std::uint8_t> original = data;
        cipher.apply(99, data.data(), len);
        cipher.apply(99, data.data(), len);
        EXPECT_EQ(data, original) << "len=" << len;
    }
}

// The batched CTR keystream must be identical on both backends and
// across awkward lengths (the batch covers up to 8 counter blocks).
TEST(CtrCipher, BothPathsProduceIdenticalKeystream)
{
    CtrCipher cipher(keyFromBytes({42, 1, 42, 2, 42, 3}));
    for (const std::size_t len : {1u, 16u, 31u, 64u, 96u, 100u, 129u}) {
        std::vector<std::uint8_t> scalar_buf(len, 0);
        Aes128::forceScalar(true);
        cipher.apply(0xfeedbead, scalar_buf.data(), len);
        Aes128::forceScalar(false);

        std::vector<std::uint8_t> dispatched_buf(len, 0);
        cipher.apply(0xfeedbead, dispatched_buf.data(), len);

        EXPECT_EQ(scalar_buf, dispatched_buf) << "len=" << len;
    }
}

TEST(CtrCipher, PrefixConsistency)
{
    // The first 16 bytes of a 64-byte encryption equal a 16-byte
    // encryption with the same IV (counter-mode structure).
    CtrCipher cipher(Aes128::Key{});
    std::uint8_t longbuf[64] = {};
    std::uint8_t shortbuf[16] = {};
    cipher.apply(5, longbuf, sizeof(longbuf));
    cipher.apply(5, shortbuf, sizeof(shortbuf));
    EXPECT_EQ(std::memcmp(longbuf, shortbuf, 16), 0);
}

} // namespace
} // namespace psoram
