/**
 * @file
 * PosMap tests: lazy PRF initialization, the on-chip map, the trusted
 * NVM region codec, and the temporary PosMap staging semantics.
 */

#include <gtest/gtest.h>

#include "nvm/device.hh"
#include "oram/posmap.hh"
#include "psoram/temp_posmap.hh"

namespace psoram {
namespace {

TEST(InitialPath, DeterministicAndInRange)
{
    for (BlockAddr addr = 0; addr < 1000; ++addr) {
        const PathId p = initialPath(7, addr, 256);
        EXPECT_LT(p, 256u);
        EXPECT_EQ(p, initialPath(7, addr, 256));
    }
}

TEST(InitialPath, RoughlyUniform)
{
    std::array<int, 16> histogram{};
    for (BlockAddr addr = 0; addr < 16000; ++addr)
        ++histogram[initialPath(3, addr, 16)];
    for (const int count : histogram)
        EXPECT_NEAR(count, 1000, 200);
}

TEST(PosMap, LazyInitThenOverride)
{
    PosMap posmap(128, 64, 5);
    const PathId initial = posmap.get(10);
    EXPECT_EQ(initial, initialPath(5, 10, 64));
    EXPECT_EQ(posmap.populated(), 0u);

    posmap.set(10, 33);
    EXPECT_EQ(posmap.get(10), 33u);
    EXPECT_EQ(posmap.populated(), 1u);

    posmap.clear();
    EXPECT_EQ(posmap.get(10), initial);
}

TEST(PosMap, OutOfRangePanics)
{
    PosMap posmap(16, 8, 1);
    EXPECT_DEATH(posmap.get(16), "out of range");
    EXPECT_DEATH(posmap.set(16, 0), "out of range");
}

TEST(PersistentPosMap, UnwrittenEntryFallsBackToPrf)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    PersistentPosMap region(4096, 100, 9, 64);
    EXPECT_EQ(region.readEntry(device, 42), initialPath(9, 42, 64));
}

TEST(PersistentPosMap, WriteThenReadBack)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    PersistentPosMap region(4096, 100, 9, 64);
    region.writeEntry(device, 42, 17);
    EXPECT_EQ(region.readEntry(device, 42), 17u);
    // Neighbor entries are untouched.
    EXPECT_EQ(region.readEntry(device, 41), initialPath(9, 41, 64));
    EXPECT_EQ(region.readEntry(device, 43), initialPath(9, 43, 64));
}

TEST(PersistentPosMap, EntryAddressesAreDense)
{
    PersistentPosMap region(4096, 100, 9, 64);
    EXPECT_EQ(region.entryAddr(0), 4096u);
    EXPECT_EQ(region.entryAddr(1),
              4096u + PersistentPosMap::kEntryBytes);
    EXPECT_EQ(region.footprintBytes(),
              100u * PersistentPosMap::kEntryBytes);
    EXPECT_DEATH(region.entryAddr(100), "out of range");
}

TEST(PersistentPosMap, EncodeSetsValidBit)
{
    const std::uint32_t word = PersistentPosMap::encodeEntry(5);
    EXPECT_TRUE(word & PersistentPosMap::kValidBit);
    EXPECT_EQ(word & ~PersistentPosMap::kValidBit, 5u);
}

TEST(PersistentPosMap, PathZeroIsDistinguishableFromUnwritten)
{
    // Path id 0 written must NOT fall back to the PRF.
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    PersistentPosMap region(0, 10, 123, 64);
    // Choose an address whose PRF initial is nonzero.
    BlockAddr addr = 0;
    while (initialPath(123, addr, 64) == 0)
        ++addr;
    region.writeEntry(device, addr, 0);
    EXPECT_EQ(region.readEntry(device, addr), 0u);
}

TEST(TempPosMap, PutGetErase)
{
    TempPosMap temp(4);
    EXPECT_FALSE(temp.get(1).has_value());
    temp.put(1, 10);
    temp.put(2, 20);
    EXPECT_EQ(*temp.get(1), 10u);
    EXPECT_EQ(*temp.get(2), 20u);
    EXPECT_EQ(temp.size(), 2u);
    EXPECT_TRUE(temp.erase(1));
    EXPECT_FALSE(temp.erase(1));
    EXPECT_FALSE(temp.get(1).has_value());
}

TEST(TempPosMap, OverwriteKeepsSingleEntry)
{
    TempPosMap temp(4);
    temp.put(1, 10);
    temp.put(1, 11); // re-remapped before commit
    EXPECT_EQ(temp.size(), 1u);
    EXPECT_EQ(*temp.get(1), 11u);
}

TEST(TempPosMap, OldestFollowsInsertionOrder)
{
    TempPosMap temp(4);
    EXPECT_FALSE(temp.oldest().has_value());
    temp.put(5, 1);
    temp.put(6, 2);
    temp.put(7, 3);
    EXPECT_EQ(*temp.oldest(), 5u);
    temp.erase(5);
    EXPECT_EQ(*temp.oldest(), 6u);
}

TEST(TempPosMap, PressureCountedWhenFull)
{
    TempPosMap temp(2);
    temp.put(1, 1);
    temp.put(2, 2);
    EXPECT_TRUE(temp.full());
    EXPECT_EQ(temp.pressureEvents(), 0u);
    temp.put(3, 3); // above capacity: counted, still stored
    EXPECT_EQ(temp.pressureEvents(), 1u);
    EXPECT_EQ(temp.size(), 3u);
}

TEST(TempPosMap, ClearDropsEverything)
{
    TempPosMap temp(4);
    temp.put(1, 1);
    temp.put(2, 2);
    temp.clear();
    EXPECT_EQ(temp.size(), 0u);
    EXPECT_FALSE(temp.oldest().has_value());
}

} // namespace
} // namespace psoram
