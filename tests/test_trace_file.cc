/**
 * @file
 * File-backed trace tests: parse, replay, round trip, and error
 * handling of the text trace format.
 */

#include <gtest/gtest.h>

#include "trace/trace_file.hh"

namespace psoram {
namespace {

TEST(TraceFile, ParseBasicRecords)
{
    VectorTrace trace = parseTrace("# comment\n"
                                   "3 R 1a\n"
                                   "1 W ff\n"
                                   "\n"
                                   "7 r 0\n");
    ASSERT_EQ(trace.size(), 3u);
    TraceRecord r{};
    ASSERT_TRUE(trace.next(r));
    EXPECT_EQ(r.gap, 3u);
    EXPECT_FALSE(r.is_write);
    EXPECT_EQ(r.line, 0x1au);
    ASSERT_TRUE(trace.next(r));
    EXPECT_EQ(r.gap, 1u);
    EXPECT_TRUE(r.is_write);
    EXPECT_EQ(r.line, 0xffu);
    ASSERT_TRUE(trace.next(r));
    EXPECT_FALSE(trace.next(r));
}

TEST(TraceFile, ZeroGapClampedToOne)
{
    VectorTrace trace = parseTrace("0 R 1\n");
    TraceRecord r{};
    ASSERT_TRUE(trace.next(r));
    EXPECT_EQ(r.gap, 1u);
}

TEST(TraceFile, ResetReplays)
{
    VectorTrace trace = parseTrace("1 R 1\n2 W 2\n");
    TraceRecord a{}, b{};
    trace.next(a);
    trace.reset();
    trace.next(b);
    EXPECT_EQ(a.line, b.line);
}

TEST(TraceFile, RoundTripThroughFormat)
{
    VectorTrace original = parseTrace("5 R abc\n9 W 10\n1 R 0\n");
    const std::string text = formatTrace(original);
    VectorTrace reparsed = parseTrace(text);
    ASSERT_EQ(reparsed.size(), original.size());
    TraceRecord a{}, b{};
    while (original.next(a)) {
        ASSERT_TRUE(reparsed.next(b));
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.is_write, b.is_write);
        EXPECT_EQ(a.line, b.line);
    }
}

TEST(TraceFile, MalformedInputIsFatal)
{
    EXPECT_DEATH(parseTrace("garbage\n"), "expected");
    EXPECT_DEATH(parseTrace("1 X 5\n"), "bad op");
    EXPECT_DEATH(parseTrace("1 R zz\n"), "bad address");
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_DEATH(loadTraceFile("/nonexistent/trace.txt"),
                 "cannot open");
}

} // namespace
} // namespace psoram
