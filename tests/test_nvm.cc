/**
 * @file
 * NVM device model tests: timing presets, bank/channel scheduling,
 * functional store semantics, traffic and wear statistics.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/bank.hh"
#include "nvm/channel.hh"
#include "nvm/device.hh"
#include "nvm/timing.hh"

namespace psoram {
namespace {

TEST(Timing, PresetsMatchTable3)
{
    const NvmTimingParams pcm = pcmTimings();
    EXPECT_EQ(pcm.tRCD, 48u);
    EXPECT_EQ(pcm.tWP, 60u);
    EXPECT_EQ(pcm.tCWD, 4u);
    EXPECT_EQ(pcm.tWTR, 3u);
    EXPECT_EQ(pcm.tRP, 1u);
    EXPECT_EQ(pcm.tCCD, 2u);
    EXPECT_EQ(pcm.clockMHz, 400u);

    const NvmTimingParams stt = sttramTimings();
    EXPECT_EQ(stt.tRCD, 14u);
    EXPECT_EQ(stt.tWP, 14u);
    EXPECT_EQ(stt.tCWD, 10u);
    EXPECT_EQ(stt.tWTR, 5u);

    EXPECT_EQ(nvmTechName(NvmTech::PCM), "PCM");
    EXPECT_EQ(nvmTechName(NvmTech::STTRAM), "STTRAM");
}

TEST(Bank, ReadLatencyIsRcdPlusBurst)
{
    const NvmTimingParams params = pcmTimings();
    Bank bank(params);
    const Cycle done = bank.access(100, false);
    EXPECT_EQ(done, 100 + params.tRCD + params.tBURST);
    EXPECT_EQ(bank.readCount(), 1u);
}

TEST(Bank, WriteOccupiesBankForWritePulse)
{
    const NvmTimingParams params = pcmTimings();
    Bank bank(params);
    const Cycle w = bank.access(0, true);
    EXPECT_EQ(w, params.tCWD + params.tBURST);
    // A read right behind the write waits for the write pulse + tWTR.
    const Cycle r = bank.access(0, false);
    EXPECT_GE(r, w + params.tWP);
    EXPECT_EQ(bank.writeCount(), 1u);
    EXPECT_EQ(bank.readCount(), 1u);
}

TEST(Bank, BackToBackReadsSpacedByCcd)
{
    const NvmTimingParams params = pcmTimings();
    Bank bank(params);
    const Cycle r1 = bank.access(0, false);
    const Cycle r2 = bank.access(0, false);
    EXPECT_EQ(r2 - r1, params.tRCD + params.tCCD + params.tRP);
}

TEST(Channel, ReadsToDifferentBanksPipeline)
{
    const NvmTimingParams params = pcmTimings();
    Channel channel(params, 8);
    // 8 reads to 8 distinct banks: the array accesses overlap and only
    // the bus serializes bursts.
    Cycle last = 0;
    for (unsigned bank = 0; bank < 8; ++bank)
        last = std::max(last, channel.access(bank, 0, false));
    EXPECT_LT(last, 8 * params.readLatency());
    EXPECT_GE(last, params.readLatency() + 7 * params.tBURST);
    EXPECT_EQ(channel.readCount(), 8u);
}

TEST(Channel, SameBankSerializes)
{
    const NvmTimingParams params = pcmTimings();
    Channel channel(params, 8);
    Cycle last = 0;
    for (int i = 0; i < 4; ++i)
        last = channel.access(0, 0, false);
    EXPECT_GE(last, 3 * (params.tRCD + params.tCCD));
}

TEST(Channel, RejectsBadBank)
{
    Channel channel(pcmTimings(), 2);
    EXPECT_DEATH(channel.access(2, 0, false), "bank index");
}

TEST(Device, FunctionalReadOfUnwrittenIsZero)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    std::uint8_t buf[128];
    std::memset(buf, 0xFF, sizeof(buf));
    device.readBytes(1000, buf, sizeof(buf));
    for (const auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(Device, WriteReadRoundTripAcrossLines)
{
    NvmDevice device(pcmTimings(), 2, 4, 1 << 20);
    std::uint8_t out[200];
    for (int i = 0; i < 200; ++i)
        out[i] = static_cast<std::uint8_t>(i);
    device.writeBytes(37, out, sizeof(out)); // deliberately unaligned
    std::uint8_t in[200] = {};
    device.readBytes(37, in, sizeof(in));
    EXPECT_EQ(std::memcmp(in, out, sizeof(out)), 0);
}

TEST(Device, PartialLineWritePreservesNeighbors)
{
    NvmDevice device(pcmTimings(), 1, 4, 1 << 20);
    const std::uint8_t a = 0x11, b = 0x22;
    device.writeBytes(0, &a, 1);
    device.writeBytes(1, &b, 1);
    std::uint8_t back[2] = {};
    device.readBytes(0, back, 2);
    EXPECT_EQ(back[0], 0x11);
    EXPECT_EQ(back[1], 0x22);
}

TEST(Device, AccessCountsTraffic)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    device.accessOne(0, false, 0);
    device.accessOne(64, false, 0);
    device.accessOne(128, true, 0);
    EXPECT_EQ(device.totalReads(), 2u);
    EXPECT_EQ(device.totalWrites(), 1u);
}

TEST(Device, MultiLineAccessCountsPerLine)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    device.access(0, 256, true, 0); // 4 lines
    EXPECT_EQ(device.totalWrites(), 4u);
}

TEST(Device, MoreChannelsFinishSooner)
{
    const auto run = [](unsigned channels) {
        NvmDevice device(pcmTimings(), channels, 8, 1 << 24);
        Cycle last = 0;
        for (Addr line = 0; line < 96; ++line)
            last = std::max(last,
                            device.accessOne(line * 64, false, 0));
        return last;
    };
    const Cycle one = run(1);
    const Cycle two = run(2);
    const Cycle four = run(4);
    EXPECT_LT(two, one);
    EXPECT_LE(four, two);
}

TEST(Device, WearTracksPerLineWrites)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    std::uint8_t byte = 1;
    for (int i = 0; i < 5; ++i)
        device.writeBytes(0, &byte, 1);
    device.writeBytes(64, &byte, 1);
    EXPECT_EQ(device.distinctLinesWritten(), 2u);
    EXPECT_EQ(device.maxLineWrites(), 5u);
    EXPECT_NEAR(device.meanLineWrites(), 3.0, 1e-9);
}

TEST(Device, SnapshotRestoreRoundTrip)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    const std::uint8_t v1 = 0xAB;
    device.writeBytes(100, &v1, 1);
    const NvmDevice::Image snapshot = device.image();

    const std::uint8_t v2 = 0xCD;
    device.writeBytes(100, &v2, 1);
    device.restoreImage(snapshot);

    std::uint8_t back = 0;
    device.readBytes(100, &back, 1);
    EXPECT_EQ(back, 0xAB);
}

TEST(Device, OutOfBoundsPanics)
{
    NvmDevice device(pcmTimings(), 1, 8, 1024);
    std::uint8_t buf[16];
    EXPECT_DEATH(device.readBytes(1020, buf, 16), "capacity");
    EXPECT_DEATH(device.writeBytes(1024, buf, 1), "capacity");
}

TEST(Device, BoundsCheckSurvivesAddressOverflow)
{
    // Regression: the old check computed `addr + len > capacity_`,
    // which wraps for addresses near the top of the 64-bit space and
    // silently admitted the access.
    NvmDevice device(pcmTimings(), 1, 8, 1024);
    std::uint8_t buf[64] = {};
    EXPECT_DEATH(device.readBytes(UINT64_MAX - 8, buf, 64), "capacity");
    EXPECT_DEATH(device.writeBytes(UINT64_MAX - 8, buf, 64), "capacity");
    // addr in range, but addr + len wraps past zero.
    EXPECT_DEATH(device.readBytes(512, buf, UINT64_MAX - 256),
                 "capacity");
    EXPECT_DEATH(device.writeBytes(512, buf, UINT64_MAX - 256),
                 "capacity");
    // The boundary itself stays legal.
    device.readBytes(1024 - 64, buf, 64);
    device.writeBytes(1024 - 64, buf, 64);
}

TEST(Device, ResetStatsClearsCountersAndWear)
{
    NvmDevice device(pcmTimings(), 1, 8, 1 << 20);
    std::uint8_t byte = 1;
    device.writeBytes(0, &byte, 1);
    device.accessOne(0, true, 0);
    device.resetStats();
    EXPECT_EQ(device.totalWrites(), 0u);
    EXPECT_EQ(device.distinctLinesWritten(), 0u);
}

} // namespace
} // namespace psoram
