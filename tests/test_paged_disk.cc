/**
 * @file
 * PagedDiskBackend unit coverage: functional equivalence with the
 * in-memory model, write-back/write-through durability semantics under
 * dropVolatile(), LRU eviction + pinning, image snapshot/restore,
 * reopen persistence, and the torn-page negative control — a partial
 * page write MUST be detected (CRC trailer mismatch) when the page is
 * next loaded.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "nvm/device.hh"
#include "nvm/fault_injector.hh"
#include "nvm/paged_disk.hh"

namespace psoram {
namespace {

constexpr std::uint64_t kCapacity = 1ULL << 20; // 256 pages

std::string
tmpTree(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

PagedDiskConfig
diskConfig(const std::string &path)
{
    PagedDiskConfig config;
    config.path = path;
    config.cache_pages = 16;
    config.pinned_pages = 2;
    return config;
}

std::vector<std::uint8_t>
pattern(std::size_t len, std::uint8_t salt)
{
    std::vector<std::uint8_t> bytes(len);
    for (std::size_t i = 0; i < len; ++i)
        bytes[i] = static_cast<std::uint8_t>(salt + i * 13);
    return bytes;
}

TEST(PagedDisk, MatchesInMemoryModelOnMixedTraffic)
{
    const std::string path = tmpTree("paged_disk_equiv.tree");
    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                          diskConfig(path));
    NvmDevice reference(pcmTimings(), 1, 8, kCapacity);

    // Mixed scalar/vectored writes, including page-straddling spans.
    std::uint64_t state = 42;
    const auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    };
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int i = 0; i < 200; ++i) {
        const std::size_t len = 32 + next() % 300;
        const Addr addr = next() % (kCapacity - 512);
        payloads.push_back(pattern(len, static_cast<std::uint8_t>(i)));
        const auto &bytes = payloads.back();
        if (i % 3 == 0) {
            const WriteSpan span{addr, bytes.data(), bytes.size()};
            disk.writev(&span, 1);
            reference.writev(&span, 1);
        } else if (i % 3 == 1) {
            disk.writeBytes(addr, bytes.data(), bytes.size());
            reference.writeBytes(addr, bytes.data(), bytes.size());
        } else {
            disk.writeBytesQuiet(addr, bytes.data(), bytes.size());
            reference.writeBytesQuiet(addr, bytes.data(), bytes.size());
        }
    }

    // Spot-check reads both ways plus the full functional image.
    std::vector<std::uint8_t> got_disk(4096), got_ref(4096);
    for (Addr addr = 0; addr + 4096 <= kCapacity; addr += 64 * 1024 - 32) {
        disk.readBytes(addr, got_disk.data(), got_disk.size());
        reference.readBytes(addr, got_ref.data(), got_ref.size());
        EXPECT_EQ(got_disk, got_ref) << "mismatch at " << addr;
    }
    EXPECT_EQ(disk.image(), reference.image());
    EXPECT_EQ(disk.tornPagesDetected(), 0u);
    std::remove(path.c_str());
}

TEST(PagedDisk, TreePersistsAcrossReopen)
{
    const std::string path = tmpTree("paged_disk_reopen.tree");
    const auto payload = pattern(300, 7);
    {
        PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                              diskConfig(path));
        disk.writeBytes(5000, payload.data(), payload.size());
        // Orderly destruction flushes and closes.
    }
    {
        PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                              diskConfig(path));
        std::vector<std::uint8_t> got(300);
        disk.readBytes(5000, got.data(), got.size());
        EXPECT_EQ(got, payload);
        EXPECT_EQ(disk.tornPagesDetected(), 0u);
    }
    std::remove(path.c_str());
}

TEST(PagedDisk, DropVolatileLosesUnbarrieredQuietWrites)
{
    const std::string path = tmpTree("paged_disk_drop.tree");
    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                          diskConfig(path));
    const auto payload = pattern(96, 11);

    // Quiet write-back without a barrier: cache-only, a crash loses it.
    disk.writeBytesQuiet(2048, payload.data(), payload.size());
    disk.dropVolatile();
    std::vector<std::uint8_t> got(96);
    disk.readBytes(2048, got.data(), got.size());
    EXPECT_EQ(got, std::vector<std::uint8_t>(96, 0))
        << "unbarriered quiet write must not survive the crash model";

    // Quiet write + persistBarrier: durable.
    disk.writeBytesQuiet(2048, payload.data(), payload.size());
    disk.persistBarrier();
    disk.dropVolatile();
    disk.readBytes(2048, got.data(), got.size());
    EXPECT_EQ(got, payload);

    // Noisy writes are write-through: durable without any barrier.
    const auto noisy = pattern(96, 12);
    disk.writeBytes(4096 * 3, noisy.data(), noisy.size());
    disk.dropVolatile();
    disk.readBytes(4096 * 3, got.data(), got.size());
    EXPECT_EQ(got, noisy);
    std::remove(path.c_str());
}

TEST(PagedDisk, EvictionWritesBackDirtyPages)
{
    const std::string path = tmpTree("paged_disk_evict.tree");
    PagedDiskConfig config = diskConfig(path);
    config.cache_pages = 4;
    config.pinned_pages = 0;
    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity, config);

    // Dirty far more pages than the cache holds (quietly, so nothing
    // but eviction write-back can make them durable).
    const auto payload = pattern(64, 21);
    for (std::uint64_t page = 0; page < 64; ++page)
        disk.writeBytesQuiet(page * PagedDiskBackend::kPageBytes,
                             payload.data(), payload.size());
    const PagedDiskBackend::IoStats io = disk.ioStats();
    EXPECT_GT(io.cache_evictions, 0u);
    EXPECT_LE(disk.residentPages(), 5u);

    // Evicted pages survive the crash model; only the still-cached
    // dirty tail may be lost.
    disk.dropVolatile();
    std::vector<std::uint8_t> got(64);
    std::size_t durable = 0;
    for (std::uint64_t page = 0; page < 64; ++page) {
        disk.readBytes(page * PagedDiskBackend::kPageBytes, got.data(),
                       got.size());
        if (got == payload)
            ++durable;
    }
    EXPECT_GE(durable, 64u - 5u);
    std::remove(path.c_str());
}

TEST(PagedDisk, PinnedPagesNeverReloadFromDisk)
{
    const std::string path = tmpTree("paged_disk_pin.tree");
    PagedDiskConfig config = diskConfig(path);
    config.cache_pages = 4;
    config.pinned_pages = 2;
    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity, config);

    std::vector<std::uint8_t> buf(64);
    disk.readBytes(0, buf.data(), buf.size()); // page 0: pinned
    // Cycle many colder pages through the tiny cache.
    for (std::uint64_t page = 8; page < 72; ++page)
        disk.readBytes(page * PagedDiskBackend::kPageBytes, buf.data(),
                       buf.size());
    const std::uint64_t preads = disk.ioStats().preads;
    disk.readBytes(0, buf.data(), buf.size());
    EXPECT_EQ(disk.ioStats().preads, preads)
        << "pinned page 0 must still be resident";
    std::remove(path.c_str());
}

TEST(PagedDisk, ImageSnapshotRestoreRoundtrips)
{
    const std::string path_a = tmpTree("paged_disk_img_a.tree");
    const std::string path_b = tmpTree("paged_disk_img_b.tree");
    PagedDiskBackend a(pcmTimings(), 1, 8, kCapacity, diskConfig(path_a));
    const auto p1 = pattern(96, 31);
    const auto p2 = pattern(96, 32);
    a.writeBytes(100, p1.data(), p1.size());
    a.writeBytesQuiet(40000, p2.data(), p2.size());

    const MemoryImage img = a.image();
    PagedDiskBackend b(pcmTimings(), 1, 8, kCapacity, diskConfig(path_b));
    b.restoreImage(img);
    EXPECT_EQ(b.image(), img);

    std::vector<std::uint8_t> got(96);
    b.readBytes(100, got.data(), got.size());
    EXPECT_EQ(got, p1);
    b.readBytes(40000, got.data(), got.size());
    EXPECT_EQ(got, p2);
    // Restore is a durable rewrite: the crash model keeps it.
    b.dropVolatile();
    b.readBytes(100, got.data(), got.size());
    EXPECT_EQ(got, p1);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

/**
 * Torn-page negative control: corrupt half a page record on disk
 * out-of-band (simulating a pwrite cut short by power loss, CRC
 * trailer now stale) — the next load of that page MUST be detected.
 */
TEST(PagedDisk, TornPageIsDetectedAtNextLoad)
{
    const std::string path = tmpTree("paged_disk_torn.tree");
    const auto payload = pattern(4096, 41);
    {
        PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                              diskConfig(path));
        disk.writeBytes(0, payload.data(), payload.size());
    }

    // Flip bytes in the first half of page 0's payload without
    // touching the trailer — exactly what a torn pwrite leaves behind.
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint8_t junk[512];
    std::memset(junk, 0x5A, sizeof(junk));
    ASSERT_EQ(::pwrite(fd, junk, sizeof(junk),
                       static_cast<off_t>(
                           PagedDiskBackend::kHeaderBytes)),
              static_cast<ssize_t>(sizeof(junk)));
    ::close(fd);

    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                          diskConfig(path));
    std::vector<std::uint8_t> got(4096);
    disk.readBytes(0, got.data(), got.size());
    EXPECT_GE(disk.tornPagesDetected(), 1u)
        << "partial-pwrite corruption escaped the CRC trailer";
    std::remove(path.c_str());
}

/**
 * The injector's PageWrite boundary really does tear: crash mid-pwrite
 * inside a drain, then verify the next process detects the torn record
 * and still serves the raw bytes (ADR redelivery is what heals them at
 * the protocol layer — here we check detection, not healing).
 */
TEST(PagedDisk, InjectedCrashMidPageWriteLeavesDetectableTorn)
{
    const std::string path = tmpTree("paged_disk_torn_inject.tree");
    const auto payload = pattern(4096, 51);
    {
        PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                              diskConfig(path));
        FaultInjector injector;
        disk.setFaultInjector(&injector);
        const FaultInjector::ScopedDrain drain(&injector);
        // Boundary sequence for one in-drain span: DrainWrite (1),
        // PageWrite mid-pwrite (2), Sync (3). Arm the PageWrite.
        injector.armAt(2);
        const WriteSpan span{0, payload.data(), payload.size()};
        EXPECT_THROW(disk.writev(&span, 1), InjectedFault);
        EXPECT_EQ(injector.firedKind(), PersistBoundary::PageWrite);
        disk.dropVolatile(); // power gone: the cached copy is lost
    }

    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                          diskConfig(path));
    std::vector<std::uint8_t> got(4096);
    disk.readBytes(0, got.data(), got.size());
    EXPECT_GE(disk.tornPagesDetected(), 1u)
        << "mid-pwrite crash did not leave a detectable torn page";
    // First half landed, second half never did.
    EXPECT_TRUE(std::memcmp(got.data(), payload.data(), 2048) == 0);
    EXPECT_TRUE(std::all_of(got.begin() + 2048, got.end(),
                            [](std::uint8_t b) { return b == 0; }));
    std::remove(path.c_str());
}

TEST(PagedDiskDeathTest, StrictTornModeRefusesCorruptPages)
{
    const std::string path = tmpTree("paged_disk_strict.tree");
    const auto payload = pattern(4096, 61);
    {
        PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity,
                              diskConfig(path));
        disk.writeBytes(0, payload.data(), payload.size());
    }
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint8_t junk[64];
    std::memset(junk, 0xA5, sizeof(junk));
    ASSERT_EQ(::pwrite(fd, junk, sizeof(junk),
                       static_cast<off_t>(
                           PagedDiskBackend::kHeaderBytes)),
              static_cast<ssize_t>(sizeof(junk)));
    ::close(fd);

    PagedDiskConfig config = diskConfig(path);
    config.strict_torn = true;
    std::vector<std::uint8_t> got(64);
    EXPECT_EXIT(
        {
            PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity, config);
            disk.readBytes(0, got.data(), got.size());
        },
        ::testing::ExitedWithCode(1), "torn page");
    std::remove(path.c_str());
}

/** Concurrent functional reads share the internal mutex (the pipelined
 *  fetch pool reads while the retirer writes back) — TSan coverage. */
TEST(PagedDisk, ConcurrentReadsAndQuietWritesAreSafe)
{
    const std::string path = tmpTree("paged_disk_threads.tree");
    PagedDiskConfig config = diskConfig(path);
    config.cache_pages = 8;
    PagedDiskBackend disk(pcmTimings(), 1, 8, kCapacity, config);
    const auto payload = pattern(96, 71);
    for (std::uint64_t page = 0; page < 32; ++page)
        disk.writeBytesQuiet(page * PagedDiskBackend::kPageBytes,
                             payload.data(), payload.size());

    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&disk, t] {
            std::vector<std::uint8_t> buf(96);
            std::vector<ReadSpan> spans(4);
            std::vector<std::vector<std::uint8_t>> bufs(
                4, std::vector<std::uint8_t>(96));
            for (int i = 0; i < 200; ++i) {
                const std::uint64_t page =
                    (static_cast<std::uint64_t>(i) * 7 + t) % 32;
                disk.readBytes(page * PagedDiskBackend::kPageBytes,
                               buf.data(), buf.size());
                for (int s = 0; s < 4; ++s)
                    spans[s] = ReadSpan{
                        ((page + s) % 32) *
                            PagedDiskBackend::kPageBytes,
                        bufs[s].data(), bufs[s].size()};
                disk.readv(spans.data(), spans.size());
            }
        });
    }
    threads.emplace_back([&disk, &payload] {
        for (int i = 0; i < 100; ++i)
            disk.writeBytesQuiet(
                (static_cast<std::uint64_t>(i) % 32) *
                    PagedDiskBackend::kPageBytes,
                payload.data(), payload.size());
        disk.persistBarrier();
    });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(disk.tornPagesDetected(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace psoram
