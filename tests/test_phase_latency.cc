/**
 * @file
 * Per-phase latency breakdown tests: the five phase windows (remap,
 * load, backup, evict, drain) are adjacent and sum to the end-to-end
 * access latency — exactly in each domain's own accounting, and within
 * 5 % of the engine-observed completion latency (the ISSUE acceptance
 * bound). Covered for PS-ORAM and Naive-PS-ORAM, for both the host-ns
 * and simulated-cycle domains, plus merge semantics and the sharded
 * merged view.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/stats.hh"
#include "sim/engine.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
phaseConfig(DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 6;
    config.num_blocks = 120;
    config.stash_capacity = 64;
    config.seed = 31;
    return config;
}

/** Drive @p accesses writes through the engine; returns the sum of the
 *  engine-observed completion latencies (simulated cycles). */
std::uint64_t
driveWrites(System &system, OramEngine &engine, unsigned accesses)
{
    std::uint8_t buf[kBlockDataBytes] = {};
    for (unsigned i = 0; i < accesses; ++i)
        engine.submitWrite((i * 7) % system.params.num_blocks, buf);
    engine.drain();
    std::uint64_t total_cycles = 0;
    for (const OramEngine::Completion &c : engine.takeCompletions())
        total_cycles += c.latency_cycles;
    return total_cycles;
}

void
checkPhaseIdentity(DesignKind design)
{
    System system = buildSystem(phaseConfig(design));
    OramEngine engine(*system.controller);
    const std::uint64_t engine_cycles = driveWrites(system, engine, 200);

    const PhaseLatencyStats &ns = system.controller->phaseHostNs();
    const PhaseLatencyStats &cyc = system.controller->phaseSimCycles();

    // Phase samples exist for every full (non-stash-hit) access, in
    // both domains, in lockstep.
    ASSERT_GT(ns.total.count(), 0u);
    EXPECT_EQ(ns.total.count(), cyc.total.count());
    EXPECT_EQ(ns.remap.count(), ns.total.count());
    EXPECT_EQ(ns.drain.count(), ns.total.count());
    EXPECT_EQ(ns.total.count() + system.controller->stashHits(),
              system.controller->accessCount());

    // The windows are adjacent, so the five phases sum to the access
    // total exactly (the 5 % ISSUE bound holds with huge margin).
    EXPECT_NEAR(ns.phaseSum(), ns.total.sum(),
                0.05 * ns.total.sum() + 1e-9);
    EXPECT_NEAR(cyc.phaseSum(), cyc.total.sum(),
                0.05 * cyc.total.sum() + 1e-9);

    // Engine-side cross-check: the completion latencies the frontend
    // reports are the same cycles the phase breakdown accounts for
    // (stash-hit accesses complete in zero simulated cycles here, so
    // the full-access totals must match the engine's sum within 5 %).
    EXPECT_NEAR(cyc.total.sum(), static_cast<double>(engine_cycles),
                0.05 * static_cast<double>(engine_cycles) + 1e-9);

    // Eviction excludes the nested drain; both are non-negative and the
    // drain never exceeds the whole eviction window.
    EXPECT_GE(cyc.evict.min(), 0.0);
    EXPECT_GE(cyc.drain.min(), 0.0);
}

TEST(PhaseLatency, PhasesSumToAccessTotal_PsOram)
{
    checkPhaseIdentity(DesignKind::PsOram);
}

TEST(PhaseLatency, PhasesSumToAccessTotal_NaivePsOram)
{
    checkPhaseIdentity(DesignKind::NaivePsOram);
}

TEST(PhaseLatency, NonPersistentDesignHasZeroDrainTime)
{
    System system = buildSystem(phaseConfig(DesignKind::Baseline));
    OramEngine engine(*system.controller);
    driveWrites(system, engine, 100);

    const PhaseLatencyStats &cyc = system.controller->phaseSimCycles();
    ASSERT_GT(cyc.total.count(), 0u);
    // No persistence domain: the drain window is identically zero and
    // the identity still holds.
    EXPECT_EQ(cyc.drain.sum(), 0.0);
    EXPECT_NEAR(cyc.phaseSum(), cyc.total.sum(),
                0.05 * cyc.total.sum() + 1e-9);
}

TEST(PhaseLatency, MergeAccumulatesAcrossInstances)
{
    PhaseLatencyStats a;
    a.sampleAccess(1.0, 2.0, 3.0, 4.0, 5.0, 15.0);
    PhaseLatencyStats b;
    b.sampleAccess(10.0, 20.0, 30.0, 40.0, 50.0, 150.0);
    b.stash_hit.sample(0.5);

    a.merge(b);
    EXPECT_EQ(a.total.count(), 2u);
    EXPECT_DOUBLE_EQ(a.total.sum(), 165.0);
    EXPECT_DOUBLE_EQ(a.phaseSum(), 165.0);
    EXPECT_DOUBLE_EQ(a.remap.sum(), 11.0);
    EXPECT_EQ(a.stash_hit.count(), 1u);

    a.reset();
    EXPECT_EQ(a.total.count(), 0u);
    EXPECT_DOUBLE_EQ(a.phaseSum(), 0.0);
}

TEST(PhaseLatency, ShardedMergedViewCoversEveryPhysicalAccess)
{
    ShardedSystemConfig config;
    config.base = phaseConfig(DesignKind::PsOram);
    config.sharding.num_shards = 4;
    ShardedSystem sharded = buildShardedSystem(config);

    std::uint64_t physical = 0;
    std::uint64_t stash_hits = 0;
    {
        ShardedOramEngine engine(sharded);
        std::uint8_t buf[kBlockDataBytes] = {};
        for (BlockAddr addr = 0; addr < 100; ++addr)
            engine.submitWrite(addr, buf);
        engine.drain();

        const PhaseLatencyStats merged = engine.mergedPhaseHostNs();
        const ShardedOramEngine::StatsSnapshot stats = engine.stats();
        physical = stats.physical_accesses;
        stash_hits = stats.stash_hits;

        // Every physical (non-stash-hit) access across every shard is
        // one sample of the merged breakdown, and the sum identity
        // survives the merge.
        EXPECT_EQ(merged.total.count(), physical);
        EXPECT_EQ(stats.controller_accesses - stash_hits, physical);
        ASSERT_GT(merged.total.count(), 0u);
        EXPECT_NEAR(merged.phaseSum(), merged.total.sum(),
                    0.05 * merged.total.sum() + 1e-9);

        const PhaseLatencyStats cycles = engine.mergedPhaseSimCycles();
        EXPECT_EQ(cycles.total.count(), physical);
    }
}

TEST(PhaseLatency, ControllerRegisterStatsExposesPhaseDistributions)
{
    System system = buildSystem(phaseConfig(DesignKind::PsOram));
    OramEngine engine(*system.controller);
    driveWrites(system, engine, 50);

    StatGroup group("ctrl");
    system.controller->registerStats(group);
    engine.registerStats(group);

    const StatGroup::Snapshot snap = group.snapshot();
    bool has_phase_ns_remap = false;
    bool has_phase_cycles_drain = false;
    for (const auto &d : snap.dists) {
        if (d.name == "phase_ns.remap") {
            has_phase_ns_remap = true;
            EXPECT_GT(d.stats.count, 0u);
        }
        if (d.name == "phase_cycles.drain")
            has_phase_cycles_drain = true;
    }
    EXPECT_TRUE(has_phase_ns_remap);
    EXPECT_TRUE(has_phase_cycles_drain);

    EXPECT_EQ(group.counterValue("submitted"), 50u);
    EXPECT_EQ(group.counterValue("accesses"),
              system.controller->accessCount());
}

} // namespace
} // namespace psoram
