/**
 * @file
 * Tamper-injection proof of the integrity subsystem (ISSUE tentpole):
 * every TamperKind the malicious-NVM adversary can mount must surface
 * as a *typed* IntegrityError at read or at recovery when integrity is
 * on — and the negative control (integrity=off) proves it is the
 * detector, not an accident of the workload, that catches it.
 *
 * The matrix follows the threat model of oram/integrity.hh:
 *
 *   - in-place modification (cipher/tag flips, tag truncation) is
 *     caught by the GMAC tag in both modes;
 *   - replay and wipe are *internally consistent* records — the
 *     documented mac-mode gap accepts them, tree mode refuses them
 *     (trusted-hash mismatch at read, root mismatch at recovery);
 *   - persisted interior Merkle nodes are an untrusted accelerator:
 *     corruption there is repaired from the verified records, never
 *     trusted and never refused;
 *   - the root record is load-bearing: any flip is a RootMismatch.
 *
 * The crash-enumeration half proves the I5 invariant ("no recovery
 * path ever accepts a node whose MAC/hash fails") across *every*
 * persist boundary with integrity=tree — in-memory, file-backed,
 * on-disk, and on 1/2/4-shard deployments killed mid-WPQ.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nvm/file_backed.hh"
#include "oram/block.hh"
#include "oram/integrity.hh"
#include "sim/crash_enumerator.hh"
#include "sim/sharded_system.hh"
#include "sim/tamper_injector.hh"

namespace psoram {
namespace {

constexpr std::uint32_t kWorkloadRounds = 2;

SystemConfig
integrityConfig(IntegrityMode mode)
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 4;
    config.num_blocks = 12;
    config.stash_capacity = 64;
    config.seed = 41;
    config.integrity = mode;
    return config;
}

/** Two write passes over every address, then a verifying read pass. */
void
runWorkload(System &system)
{
    std::uint8_t buf[kBlockDataBytes];
    for (std::uint32_t round = 1; round <= kWorkloadRounds; ++round)
        for (BlockAddr addr = 0; addr < system.params.num_blocks;
             ++addr) {
            stampPayload(addr, round, buf);
            system.controller->write(addr, buf);
        }
    for (BlockAddr addr = 0; addr < system.params.num_blocks; ++addr) {
        system.controller->read(addr, buf);
        ASSERT_EQ(payloadVersion(buf), kWorkloadRounds);
        ASSERT_EQ(payloadAddr(buf), addr);
    }
}

/** Read every address (each read loads and verifies a full path). */
void
readAll(System &system)
{
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < system.params.num_blocks; ++addr)
        system.controller->read(addr, buf);
}

/** Post-recovery read pass with the crash-era value guarantee. */
void
readAllRecovered(System &system)
{
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < system.params.num_blocks; ++addr) {
        system.controller->read(addr, buf);
        const std::uint32_t version = payloadVersion(buf);
        EXPECT_GE(version, 1u) << "addr " << addr << " lost";
        EXPECT_LE(version, kWorkloadRounds)
            << "addr " << addr << " resurrected";
        EXPECT_EQ(payloadAddr(buf), addr) << "addr " << addr << " torn";
    }
}

TamperInjector
makeTamper(System &system)
{
    return TamperInjector(*system.device, system.params.data_layout,
                          system.params.integrity_root_base,
                          system.params.merkle_region_base);
}

std::uint64_t
recordVersion(const System &system, BucketId bucket, unsigned slot)
{
    std::uint8_t record[kIntegrityRecordBytes];
    system.device->readBytes(
        system.params.data_layout.slotAddr(bucket, slot), record,
        sizeof(record));
    std::uint64_t version = 0;
    std::memcpy(&version, record + kRecordVersionOffset,
                sizeof(version));
    return version;
}

/** Run @p fn; return the IntegrityError kind it threw, if any. */
std::optional<IntegrityError::Kind>
integrityOutcome(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const IntegrityError &err) {
        return err.kind();
    }
    return std::nullopt;
}

struct SlotRef
{
    BucketId bucket = 0;
    unsigned slot = 0;
    bool found = false;
};

/** First never-written record (version 0 — TornRecord bait). */
SlotRef
findUnversionedSlot(const System &system)
{
    const TreeGeometry &geo = system.params.data_layout.geometry;
    for (BucketId b = 0; b < geo.numBuckets(); ++b)
        for (unsigned s = 0; s < geo.bucket_slots; ++s)
            if (recordVersion(system, b, s) == 0)
                return SlotRef{b, s, true};
    return SlotRef{};
}

/**
 * First *written* record whose plaintext is a dummy: wiping it loses
 * no logical block, so mac mode's acceptance of the wipe is provably
 * silent (every read still returns the right data).
 */
SlotRef
findVersionedDummySlot(const System &system)
{
    const TreeGeometry &geo = system.params.data_layout.geometry;
    const BlockCodec codec(system.params.key, system.params.cipher);
    std::uint8_t record[kIntegrityRecordBytes];
    SlotBytes raw{};
    for (BucketId b = 0; b < geo.numBuckets(); ++b)
        for (unsigned s = 0; s < geo.bucket_slots; ++s) {
            system.device->readBytes(
                system.params.data_layout.slotAddr(b, s), record,
                sizeof(record));
            std::uint64_t version = 0;
            std::memcpy(&version, record + kRecordVersionOffset,
                        sizeof(version));
            if (version == 0)
                continue;
            std::memcpy(raw.data(), record, raw.size());
            if (codec.decode(raw).isDummy())
                return SlotRef{b, s, true};
        }
    return SlotRef{};
}

/* ------------------------------------------------------------------ */
/* Functional round trip.                                             */
/* ------------------------------------------------------------------ */

TEST(Integrity, ModesServeDataAndRecoverClean)
{
    for (const IntegrityMode mode :
         {IntegrityMode::Mac, IntegrityMode::Tree}) {
        SCOPED_TRACE(integrityModeName(mode));
        System system = buildSystem(integrityConfig(mode));
        ASSERT_NE(system.controller->integrity(), nullptr);
        EXPECT_EQ(system.controller->integrity()->mode(), mode);
        runWorkload(system);

        const IntegrityManager *mgr = system.controller->integrity();
        EXPECT_GT(mgr->nextVersion(), 1u);
        EXPECT_GT(mgr->commitSeq(), 0u);

        // Clean recovery: every record verifies and the data still
        // reads back. The first recovery may repair a few persisted
        // interior nodes — buckets no accessed path ever touched still
        // hold the device's initial zeros, not the all-zero-tree
        // default hashes — but repair must converge: a second recovery
        // finds every persisted node current.
        system.recoverController();
        ASSERT_NE(system.controller->integrity(), nullptr);
        readAllRecovered(system);
        system.recoverController();
        ASSERT_NE(system.controller->integrity(), nullptr);
        EXPECT_EQ(system.controller->integrity()->nodesRepaired(), 0u);

        // The recovered version counter and codec IVs must have
        // resumed above the crash-era watermarks: fresh writes seal
        // records the read path accepts.
        std::uint8_t buf[kBlockDataBytes];
        stampPayload(0, 2, buf);
        system.controller->write(0, buf);
        system.controller->read(0, buf);
        EXPECT_EQ(payloadVersion(buf), 2u);
    }
}

/* ------------------------------------------------------------------ */
/* Detection at read.                                                 */
/* ------------------------------------------------------------------ */

struct ReadCase
{
    IntegrityMode mode;
    TamperKind kind;
    IntegrityError::Kind expect;
};

TEST(Integrity, ReadPathDetectsRecordTampering)
{
    const ReadCase cases[] = {
        // GMAC catches in-place modification in both modes.
        {IntegrityMode::Mac, TamperKind::FlipCipherByte,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Mac, TamperKind::FlipTagByte,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Mac, TamperKind::TruncateTag,
         IntegrityError::Kind::MacMismatch},
        // Tree mode pins the exact record bytes: the trusted-hash
        // check fires first, and also catches the wipe GMAC cannot.
        {IntegrityMode::Tree, TamperKind::FlipCipherByte,
         IntegrityError::Kind::HashMismatch},
        {IntegrityMode::Tree, TamperKind::FlipTagByte,
         IntegrityError::Kind::HashMismatch},
        {IntegrityMode::Tree, TamperKind::TruncateTag,
         IntegrityError::Kind::HashMismatch},
        {IntegrityMode::Tree, TamperKind::WipeRecord,
         IntegrityError::Kind::HashMismatch},
    };
    for (const ReadCase &c : cases) {
        SCOPED_TRACE(std::string(integrityModeName(c.mode)) + "/" +
                     tamperKindName(c.kind));
        System system = buildSystem(integrityConfig(c.mode));
        runWorkload(system);
        // The root bucket is on every path and resealed by every
        // eviction, so its records are always versioned — and always
        // verified by the next read.
        ASSERT_NE(recordVersion(system, 0, 0), 0u);
        TamperInjector tamper = makeTamper(system);
        tamper.apply(c.kind, 0, 0);
        const auto outcome =
            integrityOutcome([&] { readAll(system); });
        ASSERT_TRUE(outcome.has_value())
            << "tamper not detected at read";
        EXPECT_EQ(*outcome, c.expect)
            << "got " << IntegrityError::kindName(*outcome);
    }
}

TEST(Integrity, ReadPathDetectsReplayInTreeMode)
{
    System system = buildSystem(integrityConfig(IntegrityMode::Tree));
    runWorkload(system);

    TamperInjector tamper = makeTamper(system);
    tamper.snapshotRecord(0, 0);
    const std::uint64_t snapshot_version = recordVersion(system, 0, 0);

    // A few more accesses reseal the root bucket with fresh versions,
    // so the snapshot is now a stale-but-self-consistent record.
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < 4; ++addr) {
        stampPayload(addr, kWorkloadRounds, buf);
        system.controller->write(addr, buf);
    }
    ASSERT_NE(recordVersion(system, 0, 0), snapshot_version);

    tamper.apply(TamperKind::ReplayRecord, 0, 0);
    const auto outcome = integrityOutcome([&] { readAll(system); });
    ASSERT_TRUE(outcome.has_value()) << "replay not detected at read";
    EXPECT_EQ(*outcome, IntegrityError::Kind::HashMismatch);
}

/* ------------------------------------------------------------------ */
/* Detection at recovery.                                             */
/* ------------------------------------------------------------------ */

struct RecoveryCase
{
    IntegrityMode mode;
    TamperKind kind;
    IntegrityError::Kind expect;
};

TEST(Integrity, RecoveryRefusesTamperedImage)
{
    const RecoveryCase cases[] = {
        {IntegrityMode::Mac, TamperKind::FlipCipherByte,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Mac, TamperKind::FlipTagByte,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Mac, TamperKind::TruncateTag,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Mac, TamperKind::FlipRootRecord,
         IntegrityError::Kind::RootMismatch},
        {IntegrityMode::Tree, TamperKind::FlipCipherByte,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Tree, TamperKind::FlipTagByte,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Tree, TamperKind::TruncateTag,
         IntegrityError::Kind::MacMismatch},
        {IntegrityMode::Tree, TamperKind::FlipRootRecord,
         IntegrityError::Kind::RootMismatch},
        // Wipe passes the per-record checks (internally consistent)
        // but the recomputed Merkle root disagrees with the committed
        // root record.
        {IntegrityMode::Tree, TamperKind::WipeRecord,
         IntegrityError::Kind::RootMismatch},
    };
    for (const RecoveryCase &c : cases) {
        SCOPED_TRACE(std::string(integrityModeName(c.mode)) + "/" +
                     tamperKindName(c.kind));
        System system = buildSystem(integrityConfig(c.mode));
        runWorkload(system);
        ASSERT_NE(recordVersion(system, 0, 0), 0u);
        TamperInjector tamper = makeTamper(system);
        tamper.apply(c.kind, 0, 0);
        const auto outcome =
            integrityOutcome([&] { system.recoverController(); });
        ASSERT_TRUE(outcome.has_value())
            << "tamper not detected at recovery";
        EXPECT_EQ(*outcome, c.expect)
            << "got " << IntegrityError::kindName(*outcome);
    }
}

TEST(Integrity, RecoveryRefusesReplayInTreeMode)
{
    System system = buildSystem(integrityConfig(IntegrityMode::Tree));
    runWorkload(system);

    TamperInjector tamper = makeTamper(system);
    tamper.snapshotRecord(0, 0);
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < 4; ++addr) {
        stampPayload(addr, kWorkloadRounds, buf);
        system.controller->write(addr, buf);
    }
    tamper.apply(TamperKind::ReplayRecord, 0, 0);

    const auto outcome =
        integrityOutcome([&] { system.recoverController(); });
    ASSERT_TRUE(outcome.has_value())
        << "replay not detected at recovery";
    EXPECT_EQ(*outcome, IntegrityError::Kind::RootMismatch);
}

TEST(Integrity, RecoveryRefusesTornRecords)
{
    // A record that is neither all-zero nor versioned is a splice no
    // crash can produce: flipping a byte of a *never-written* record
    // makes exactly that, and both modes must refuse it as torn.
    for (const IntegrityMode mode :
         {IntegrityMode::Mac, IntegrityMode::Tree}) {
        SCOPED_TRACE(integrityModeName(mode));
        System system = buildSystem(integrityConfig(mode));
        runWorkload(system);
        const SlotRef torn = findUnversionedSlot(system);
        ASSERT_TRUE(torn.found) << "no never-written record to tamper";
        TamperInjector tamper = makeTamper(system);
        tamper.apply(TamperKind::FlipCipherByte, torn.bucket,
                     torn.slot);
        const auto outcome =
            integrityOutcome([&] { system.recoverController(); });
        ASSERT_TRUE(outcome.has_value())
            << "torn record not detected at recovery";
        EXPECT_EQ(*outcome, IntegrityError::Kind::TornRecord);
    }
}

/* ------------------------------------------------------------------ */
/* The documented mac-mode gap, and the untrusted-accelerator repair. */
/* ------------------------------------------------------------------ */

TEST(Integrity, MacModeGapAcceptsWipeSilently)
{
    // Wipe a written-but-dummy record: mac mode accepts the image
    // (the all-zero record is internally consistent) and — because no
    // logical block lived there — keeps serving every read correctly.
    // The identical tamper is refused by tree mode above; this is the
    // gap the escalation to IntegrityMode::Tree exists for.
    System system = buildSystem(integrityConfig(IntegrityMode::Mac));
    runWorkload(system);
    const SlotRef victim = findVersionedDummySlot(system);
    ASSERT_TRUE(victim.found) << "no versioned dummy record to wipe";
    TamperInjector tamper = makeTamper(system);
    tamper.apply(TamperKind::WipeRecord, victim.bucket, victim.slot);

    const auto outcome =
        integrityOutcome([&] { system.recoverController(); });
    EXPECT_FALSE(outcome.has_value())
        << "mac mode unexpectedly detected the wipe: "
        << IntegrityError::kindName(*outcome);
    readAllRecovered(system);
}

TEST(Integrity, MacModeGapAcceptsReplayAtRecovery)
{
    System system = buildSystem(integrityConfig(IntegrityMode::Mac));
    runWorkload(system);
    TamperInjector tamper = makeTamper(system);
    tamper.snapshotRecord(0, 0);
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < 4; ++addr) {
        stampPayload(addr, kWorkloadRounds, buf);
        system.controller->write(addr, buf);
    }
    tamper.apply(TamperKind::ReplayRecord, 0, 0);

    // The stale (record, tag) pair is self-consistent: mac-mode
    // recovery verifies every tag and accepts the image.
    const auto outcome =
        integrityOutcome([&] { system.recoverController(); });
    EXPECT_FALSE(outcome.has_value())
        << "mac mode unexpectedly detected the replay: "
        << IntegrityError::kindName(*outcome);
}

TEST(Integrity, MerkleNodeCorruptionRepairedNeverRefused)
{
    System system = buildSystem(integrityConfig(IntegrityMode::Tree));
    runWorkload(system);
    TamperInjector tamper = makeTamper(system);
    tamper.apply(TamperKind::FlipMerkleNode, 3, 0);

    // The persisted interior nodes are a lazily streamed accelerator:
    // recovery recomputes every node from the verified records and
    // repairs the stored copy — refusing here would turn any crash
    // between a round commit and its lazy node stream into a brick.
    const auto outcome =
        integrityOutcome([&] { system.recoverController(); });
    ASSERT_FALSE(outcome.has_value())
        << "interior-node corruption must be repaired, got "
        << IntegrityError::kindName(*outcome);
    ASSERT_NE(system.controller->integrity(), nullptr);
    EXPECT_GE(system.controller->integrity()->nodesRepaired(), 1u);
    readAllRecovered(system);
}

/* ------------------------------------------------------------------ */
/* Negative control: without the detector, tampering is silent.       */
/* ------------------------------------------------------------------ */

TEST(Integrity, NegativeControlOffModeMissesTampering)
{
    System system = buildSystem(integrityConfig(IntegrityMode::Off));
    EXPECT_EQ(system.controller->integrity(), nullptr);
    runWorkload(system);

    // Find a *written* dummy slot (non-zero ciphertext, dummy
    // plaintext) and wipe it — the tamper tree mode detects at the
    // next read. With integrity off nothing notices, at read or at
    // recovery: the detection above is the detector's doing, not a
    // side effect of the workload.
    const TreeGeometry &geo = system.params.data_layout.geometry;
    const BlockCodec codec(system.params.key, system.params.cipher);
    SlotBytes raw{};
    SlotRef victim;
    for (BucketId b = 0; b < geo.numBuckets() && !victim.found; ++b)
        for (unsigned s = 0; s < geo.bucket_slots; ++s) {
            system.device->readBytes(
                system.params.data_layout.slotAddr(b, s), raw.data(),
                raw.size());
            bool zero = true;
            for (const std::uint8_t byte : raw)
                zero = zero && byte == 0;
            if (!zero && codec.decode(raw).isDummy()) {
                victim = SlotRef{b, s, true};
                break;
            }
        }
    ASSERT_TRUE(victim.found) << "no written dummy slot to wipe";

    TamperInjector tamper(*system.device, system.params.data_layout,
                          /*root_record_base=*/0,
                          /*merkle_region_base=*/0);
    tamper.apply(TamperKind::WipeRecord, victim.bucket, victim.slot);

    EXPECT_FALSE(
        integrityOutcome([&] { readAll(system); }).has_value());
    EXPECT_FALSE(
        integrityOutcome([&] { system.recoverController(); })
            .has_value());
    readAllRecovered(system);
}

/* ------------------------------------------------------------------ */
/* Armed tampering at an exact persist boundary.                      */
/* ------------------------------------------------------------------ */

TEST(Integrity, ArmedTamperLandsAtExactBoundaryAndIsDetected)
{
    const SystemConfig config = integrityConfig(IntegrityMode::Tree);

    // Probe: the boundary sequence is deterministic per (config,
    // workload); count it so the tamper can be armed at the very last
    // boundary — after the final eviction's writes, where nothing
    // overwrites the mutation before the next read verifies it.
    std::uint64_t total = 0;
    {
        System probe = buildSystem(config);
        FaultInjector injector;
        probe.attachFaultInjector(&injector);
        runWorkload(probe);
        total = injector.boundariesSeen();
    }
    ASSERT_GT(total, 0u);

    System system = buildSystem(config);
    FaultInjector injector; // never armed: boundaries only observed
    system.attachFaultInjector(&injector);
    TamperInjector tamper = makeTamper(system);
    tamper.armAt(total, TamperKind::FlipTagByte, 0, 0);
    tamper.attachTo(injector);

    runWorkload(system);
    EXPECT_TRUE(tamper.fired()) << "armed tamper never triggered";
    EXPECT_EQ(tamper.applications(), 1u);

    const auto outcome = integrityOutcome([&] { readAll(system); });
    ASSERT_TRUE(outcome.has_value())
        << "boundary-armed tamper not detected";
    EXPECT_EQ(*outcome, IntegrityError::Kind::HashMismatch);
}

/* ------------------------------------------------------------------ */
/* Crash enumeration: I5 across every persist boundary.               */
/* ------------------------------------------------------------------ */

void
reportFailures(const CrashEnumSummary &summary)
{
    for (const CrashPointFailure &failure : summary.failures)
        for (const std::string &violation : failure.violations)
            ADD_FAILURE() << "boundary " << failure.boundary << ": "
                          << violation;
}

TEST(IntegrityCrashEnum, TreeModeEveryBoundaryRecovers)
{
    CrashEnumConfig config;
    config.system = integrityConfig(IntegrityMode::Tree);
    // A small WPQ forces multi-round eviction bundles: each committed
    // round must carry a root record covering exactly its own writes,
    // the case the per-round finalizer exists for.
    config.system.wpq_entries = 8;
    config.trace = makeCrashTrace(/*seed=*/17, /*ops=*/10,
                                  config.system.num_blocks);
    config.post_recovery_ops = 24;

    const CrashEnumSummary summary = enumerateCrashPoints(config);
    reportFailures(summary);
    EXPECT_TRUE(summary.ok()) << summary.describe();
    EXPECT_GT(summary.replays, 50u);
}

TEST(IntegrityCrashEnum, MacModeEveryBoundaryRecovers)
{
    CrashEnumConfig config;
    config.system = integrityConfig(IntegrityMode::Mac);
    config.system.wpq_entries = 8;
    config.trace = makeCrashTrace(/*seed=*/19, /*ops=*/10,
                                  config.system.num_blocks);
    config.post_recovery_ops = 24;
    config.stride = 3;

    const CrashEnumSummary summary = enumerateCrashPoints(config);
    reportFailures(summary);
    EXPECT_TRUE(summary.ok()) << summary.describe();
    EXPECT_GT(summary.replays, 10u);
}

std::string
tmpTree(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    for (unsigned shard = 0; shard < 8; ++shard)
        std::remove(
            (path + ".shard" + std::to_string(shard)).c_str());
    return path;
}

/**
 * Sampled enumeration with a fresh backing file per replay: each armed
 * replay rebuilds the System, and a file/disk backend would otherwise
 * reopen the previous replay's tree.
 */
void
runSampledEnum(CrashEnumConfig config, const std::string &path,
               std::uint64_t stride)
{
    std::uint64_t total = 0;
    {
        System system = buildSystem(config.system);
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        std::uint8_t buf[kBlockDataBytes];
        for (const TraceOp &op : config.trace) {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                system.controller->write(op.addr, buf);
            } else {
                system.controller->read(op.addr, buf);
            }
        }
        total = injector.boundariesSeen();
    }
    ASSERT_GT(total, 0u);

    std::uint64_t replays = 0;
    for (std::uint64_t k = 1; k <= total; k += stride) {
        std::remove(path.c_str()); // fresh tree per replay
        const std::vector<std::string> violations =
            runArmedCrash(config, k);
        ++replays;
        for (const std::string &violation : violations)
            ADD_FAILURE() << violation;
        if (::testing::Test::HasFailure())
            break;
    }
    EXPECT_GT(replays, 8u);
    std::remove(path.c_str());
}

TEST(IntegrityCrashEnum, FileBackedTreeModeSampledBoundaries)
{
    const std::string path = tmpTree("integrity_file_enum.img");
    CrashEnumConfig config;
    config.system = integrityConfig(IntegrityMode::Tree);
    config.system.backing_file = path; // Memory + file => FileBackedNvm
    config.system.wpq_entries = 8;
    config.trace = makeCrashTrace(/*seed=*/5, /*ops=*/8,
                                  config.system.num_blocks);
    config.post_recovery_ops = 24;
    runSampledEnum(config, path, /*stride=*/7);
}

TEST(IntegrityCrashEnum, DiskTreeModeSampledBoundaries)
{
    const std::string path = tmpTree("integrity_disk_enum.tree");
    CrashEnumConfig config;
    config.system = integrityConfig(IntegrityMode::Tree);
    config.system.backend = BackendKind::Disk;
    config.system.backing_file = path;
    config.system.disk_cache_pages = 32; // far smaller than the tree
    config.system.disk_pinned_pages = 4;
    config.trace = makeCrashTrace(/*seed=*/13, /*ops=*/8,
                                  config.system.num_blocks);
    config.post_recovery_ops = 24;
    runSampledEnum(config, path, /*stride=*/13);
}

/* ------------------------------------------------------------------ */
/* Sharded deployments killed mid-WPQ, integrity=tree.                */
/* ------------------------------------------------------------------ */

FileBackedNvm *
fileNvm(System &system)
{
    auto *nvm = dynamic_cast<FileBackedNvm *>(system.device.get());
    EXPECT_NE(nvm, nullptr);
    return nvm;
}

void
runShardedIntegrityKill(unsigned num_shards)
{
    const std::string backing = tmpTree(
        "integrity_sharded_" + std::to_string(num_shards) + ".img");
    ShardedSystemConfig config;
    config.base = integrityConfig(IntegrityMode::Tree);
    config.base.tree_height = 5;
    config.base.num_blocks = 48;
    config.base.seed = 31;
    config.base.backing_file = backing;
    config.sharding.num_shards = num_shards;

    constexpr BlockAddr kBlocks = 48;
    std::uint8_t buf[kBlockDataBytes];
    std::vector<RecoveryOracle> oracle(num_shards);
    const unsigned victim = num_shards - 1;

    // "Process 1": version-1 writes everywhere; kill the victim shard
    // mid-WPQ on a version-2 write; power fails for every shard.
    {
        ShardedSystem system = buildShardedSystem(config);
        ASSERT_EQ(system.numShards(), num_shards);
        for (unsigned k = 0; k < num_shards; ++k) {
            ASSERT_NE(system.controller(k).integrity(), nullptr);
            system.controller(k).setCommitObserver(
                oracle[k].observer());
        }

        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            stampPayload(slot.local, 1, buf);
            system.controller(slot.shard).write(slot.local, buf);
            oracle[slot.shard].latest[slot.local] = 1;
        }

        CrashAtOccurrence policy(CrashSite::BeforeCommit, 1);
        system.controller(victim).setCrashPolicy(&policy);
        bool crashed = false;
        for (BlockAddr addr = 0; addr < kBlocks && !crashed; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            if (slot.shard != victim)
                continue;
            stampPayload(slot.local, 2, buf);
            try {
                system.controller(victim).write(slot.local, buf);
                oracle[victim].latest[slot.local] = 2;
            } catch (const CrashEvent &) {
                crashed = true;
                oracle[victim].latest[slot.local] = 2;
            }
        }
        ASSERT_TRUE(crashed) << "WPQ crash site never reached";

        for (unsigned k = 0; k < num_shards; ++k) {
            system.controller(k).powerFailureFlush();
            ASSERT_TRUE(fileNvm(system.shards[k])->persist());
        }
    }

    // "Process 2": rebuild from the files alone; every shard's
    // integrity recovery must accept its committed prefix (the victim
    // included — a torn round never committed a root record) and the
    // verified reads must hold the crash guarantee.
    {
        ShardedSystem system = buildShardedSystem(config);
        for (unsigned k = 0; k < num_shards; ++k) {
            EXPECT_GT(fileNvm(system.shards[k])->linesLoaded(), 0u)
                << "shard " << k << " image missing";
            const auto outcome = integrityOutcome(
                [&] { system.controller(k).recoverFromNvm(); });
            ASSERT_FALSE(outcome.has_value())
                << "shard " << k << " refused its own crash image: "
                << IntegrityError::kindName(*outcome);
        }

        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            std::memset(buf, 0xFF, sizeof(buf));
            system.controller(slot.shard).read(slot.local, buf);
            const std::uint32_t v = payloadVersion(buf);
            EXPECT_GE(v, oracle[slot.shard].durableOf(slot.local))
                << "shard " << slot.shard << " lost block " << addr;
            EXPECT_LE(v, oracle[slot.shard].latest.at(slot.local))
                << "shard " << slot.shard << " resurrected block "
                << addr;
            if (v != 0) {
                EXPECT_EQ(payloadAddr(buf), slot.local)
                    << "shard " << slot.shard << " tore block "
                    << addr;
            }
        }

        // Recovery must leave every shard fully functional under
        // continued sealing + verification.
        for (BlockAddr addr = 0; addr < kBlocks; addr += 5) {
            const ShardSlot slot = system.router.route(addr);
            const auto version = static_cast<std::uint32_t>(500 + addr);
            stampPayload(slot.local, version, buf);
            system.controller(slot.shard).write(slot.local, buf);
            system.controller(slot.shard).read(slot.local, buf);
            EXPECT_EQ(payloadVersion(buf), version)
                << "post-recovery shard " << slot.shard << " broken";
        }

        for (unsigned k = 0; k < num_shards; ++k)
            fileNvm(system.shards[k])->discardBackingFile();
    }
}

TEST(IntegrityShardedCrash, OneShardKillRecoversVerified)
{
    runShardedIntegrityKill(1);
}

TEST(IntegrityShardedCrash, TwoShardKillRecoversVerified)
{
    runShardedIntegrityKill(2);
}

TEST(IntegrityShardedCrash, FourShardKillRecoversVerified)
{
    runShardedIntegrityKill(4);
}

} // namespace
} // namespace psoram
