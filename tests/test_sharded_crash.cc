/**
 * @file
 * Sharded crash consistency over FileBackedNvm: the PS-ORAM
 * crash-recovery guarantee must hold *per shard* when a multi-shard
 * deployment dies at an inconvenient moment.
 *
 * Headline scenario (ISSUE satellite): the process is killed after
 * shard 0's eviction has fully persisted but while shard 1 is mid-WPQ
 * (entries pushed, "end" signal not yet written). Both shards' NVM
 * images are rebuilt from their backing files in a fresh "process", and
 * both trees + PosMaps must recover to the paper's guarantee: every
 * block reads back a version v with durable <= v <= latest, untorn.
 * (Durability is set by eviction placement — a write whose block stays
 * in the volatile stash rolls back to its durable backup on restart,
 * exactly as in the unsharded crash tests.)
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "nvm/file_backed.hh"
#include "sim/sharded_system.hh"

namespace psoram {
namespace {

ShardedSystemConfig
crashConfig(const std::string &backing, unsigned shards)
{
    ShardedSystemConfig config;
    config.base.design = DesignKind::PsOram;
    config.base.tree_height = 6;
    config.base.num_blocks = 96;
    config.base.stash_capacity = 64;
    config.base.seed = 23;
    config.base.backing_file = backing;
    config.sharding.num_shards = shards;
    return config;
}

void
versionedPayload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    return version;
}

/** Per-shard versioned-payload oracle fed by the commit observer. */
struct ShardOracle
{
    std::map<BlockAddr, std::uint32_t> committed; // local addr -> version
    std::map<BlockAddr, std::uint32_t> latest;    // local addr -> version

    CommitObserver
    observer()
    {
        return [this](BlockAddr local,
                      const std::array<std::uint8_t, kBlockDataBytes>
                          &data) {
            const std::uint32_t version = versionOf(data.data());
            auto &slot = committed[local];
            ASSERT_GE(version, slot) << "durability went backwards";
            slot = version;
        };
    }

    std::uint32_t
    durableVersion(BlockAddr local) const
    {
        const auto it = committed.find(local);
        return it == committed.end() ? 0 : it->second;
    }
};

FileBackedNvm *
fileNvm(System &system)
{
    auto *nvm = dynamic_cast<FileBackedNvm *>(system.device.get());
    EXPECT_NE(nvm, nullptr);
    return nvm;
}

TEST(ShardedCrash, KillBetweenShardPersistsRecoversBothShards)
{
    const std::string backing =
        ::testing::TempDir() + "psnvm_sharded_crash.img";
    const ShardedSystemConfig config = crashConfig(backing, 2);
    // Per-shard backing files (N > 1 appends .shardK).
    for (unsigned k = 0; k < 2; ++k)
        std::remove((backing + ".shard" + std::to_string(k)).c_str());

    constexpr BlockAddr kBlocks = 96;
    std::uint8_t buf[kBlockDataBytes];
    ShardOracle oracle[2];
    BlockAddr in_flight = kDummyBlockAddr;

    // "Process 1": version-1 writes to every address on both shards,
    // then kill the process after shard 0 persisted but while shard 1
    // is mid-WPQ on a version-2 write.
    {
        ShardedSystem system = buildShardedSystem(config);
        ASSERT_EQ(system.numShards(), 2u);
        for (unsigned k = 0; k < 2; ++k)
            system.controller(k).setCommitObserver(oracle[k].observer());

        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            versionedPayload(addr, 1, buf);
            system.controller(slot.shard).write(slot.local, buf);
            oracle[slot.shard].latest[slot.local] = 1;
        }

        // Shard 0: every eviction committed; ADR flush + persist.
        system.controller(0).powerFailureFlush();
        ASSERT_TRUE(fileNvm(system.shards[0])->persist());

        // Shard 1: arm a crash inside the WPQ bracket (entries pushed,
        // commit record not yet written) and trip it with a v2 write.
        CrashAtOccurrence policy(CrashSite::BeforeCommit, 1);
        system.controller(1).setCrashPolicy(&policy);
        bool crashed = false;
        for (BlockAddr addr = 0; addr < kBlocks && !crashed; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            if (slot.shard != 1)
                continue;
            versionedPayload(addr, 2, buf);
            try {
                system.controller(1).write(slot.local, buf);
                oracle[1].latest[slot.local] = 2;
            } catch (const CrashEvent &) {
                crashed = true;
                in_flight = addr;
                // The mid-WPQ write may persist or abort.
                oracle[1].latest[slot.local] = 2;
            }
        }
        ASSERT_TRUE(crashed) << "WPQ crash site never reached";
        ASSERT_NE(in_flight, kDummyBlockAddr);

        // Power fails now: committed WPQ rounds flush, the torn tail
        // does not; persist shard 1's image and drop every object.
        system.controller(1).powerFailureFlush();
        ASSERT_TRUE(fileNvm(system.shards[1])->persist());
    }

    // The scenario must be non-vacuous: the bulk of both shards' writes
    // became durable before the kill (only stash-resident tails may
    // legally roll back).
    for (unsigned k = 0; k < 2; ++k) {
        std::size_t durable = 0;
        for (const auto &[local, v] : oracle[k].committed)
            if (v >= 1)
                ++durable;
        EXPECT_GT(durable, kBlocks / 4)
            << "shard " << k << " committed almost nothing";
    }

    // "Process 2": rebuild both shards from their backing files alone.
    {
        ShardedSystem system = buildShardedSystem(config);
        for (unsigned k = 0; k < 2; ++k) {
            EXPECT_GT(fileNvm(system.shards[k])->linesLoaded(), 0u)
                << "shard " << k << " image missing";
            system.controller(k).recoverFromNvm();
        }

        // Both trees and PosMaps must serve every address again with
        // the per-shard guarantee: durable <= v <= latest, untorn.
        for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
            const ShardSlot slot = system.router.route(addr);
            std::memset(buf, 0xFF, sizeof(buf));
            system.controller(slot.shard).read(slot.local, buf);

            const std::uint32_t v = versionOf(buf);
            const std::uint32_t durable =
                oracle[slot.shard].durableVersion(slot.local);
            const std::uint32_t latest =
                oracle[slot.shard].latest.at(slot.local);
            EXPECT_GE(v, durable)
                << "shard " << slot.shard << " lost block " << addr;
            EXPECT_LE(v, latest)
                << "shard " << slot.shard << " resurrected block "
                << addr;
            if (v != 0) {
                BlockAddr stored = 0;
                std::memcpy(&stored, buf, sizeof(stored));
                EXPECT_EQ(stored, addr)
                    << "shard " << slot.shard << " tore block " << addr;
            }
        }

        // Recovery must leave both shards fully functional.
        std::map<BlockAddr, std::uint32_t> post;
        for (BlockAddr addr = 0; addr < kBlocks; addr += 3) {
            const ShardSlot slot = system.router.route(addr);
            const auto version = static_cast<std::uint32_t>(100 + addr);
            versionedPayload(addr, version, buf);
            system.controller(slot.shard).write(slot.local, buf);
            post[addr] = version;
        }
        for (const auto &[addr, version] : post) {
            const ShardSlot slot = system.router.route(addr);
            system.controller(slot.shard).read(slot.local, buf);
            EXPECT_EQ(versionOf(buf), version)
                << "post-recovery shard " << slot.shard << " broken";
        }

        for (unsigned k = 0; k < 2; ++k)
            fileNvm(system.shards[k])->discardBackingFile();
    }
}

/** Per-shard backing files must not collide across shards. */
TEST(ShardedCrash, ShardBackingFilesAreDistinct)
{
    const std::string backing =
        ::testing::TempDir() + "psnvm_sharded_paths.img";
    const ShardedSystemConfig config = crashConfig(backing, 4);
    ShardRouter router(config.sharding, config.base.num_blocks);

    std::set<std::string> paths;
    for (unsigned k = 0; k < 4; ++k) {
        const SystemConfig sc = shardSystemConfig(config, router, k);
        EXPECT_TRUE(paths.insert(sc.backing_file).second)
            << "duplicate backing file " << sc.backing_file;
        EXPECT_NE(sc.backing_file, backing)
            << "shard must not reuse the base path";
    }
}

} // namespace
} // namespace psoram
