/**
 * @file
 * Seeded crash-torture harness (stand-alone binary, not a gtest).
 *
 * Where the exhaustive enumerator (tests/test_fault_injection.cc)
 * covers *every* persist boundary of a small fixed trace, this harness
 * covers the *configuration space*: each iteration draws a random
 * system — design variant, WPQ size, tree geometry, shard count,
 * occasionally a file-backed image — runs a random trace with a fault
 * armed at a random persist boundary, recovers, and runs the full
 * recovery-invariant checker.
 *
 * Everything derives from one --seed, so any failure reproduces with
 *
 *     torture_crash --seed=S --iterations=N
 *
 * (the failing iteration and its config are printed and written to the
 * report file, which CI uploads as an artifact).
 *
 * Usage:
 *   torture_crash [--seed=N] [--duration=SECONDS] [--iterations=N]
 *                 [--report=PATH] [--trace=PATH] [--metrics=PATH]
 *
 * --duration and --iterations are both stop conditions; the first one
 * reached wins. Defaults: seed 1, duration 10 s, iterations unlimited.
 *
 * --trace records the run into the Chrome-trace ring buffers and, on a
 * failing iteration, writes the trace of the dying run next to the
 * report (the buffers are cleared per iteration so the file holds the
 * failure, not megabytes of healthy history). --metrics dumps a
 * snapshot of the recovery counters at exit.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/crash_enumerator.hh"
#include "sim/engine.hh"
#include "sim/recovery_invariants.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

struct Options
{
    std::uint64_t seed = 1;
    double duration_s = -1.0;     // < 0 = no time bound
    std::uint64_t iterations = 0; // 0 = unlimited
    std::string report = "torture_crash_failure.txt";
    /** Non-empty: record, and write the failing iteration's trace. */
    std::string trace;
    /** Non-empty: dump a metrics snapshot at exit. */
    std::string metrics;
};

/** splitmix64: independent per-iteration seed stream. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** One iteration's drawn configuration (printable for reproduction). */
struct TortureCase
{
    SystemConfig system;
    unsigned num_shards = 1;
    std::size_t trace_ops = 64;
    double write_fraction = 0.6;
    std::uint64_t trace_seed = 0;
    std::uint64_t armed_boundary = 0;

    std::string
    describe() const
    {
        std::ostringstream out;
        out << designName(system.design) << " height "
            << system.tree_height << " blocks " << system.num_blocks
            << " wpq " << system.wpq_entries << " shards " << num_shards
            << " depth " << system.pipeline_depth << " backend "
            << backendName(system.effectiveBackend())
            << " integrity " << integrityModeName(system.integrity)
            << " flightrec "
            << (system.flight_recorder ? system.flight_records : 0)
            << " ops " << trace_ops << " wf " << write_fraction
            << " trace-seed " << trace_seed << " armed-at "
            << armed_boundary;
        return out.str();
    }
};

TortureCase
drawCase(Rng &rng, std::uint64_t iteration)
{
    TortureCase tc;
    // Shard count: biased toward the unsharded stack, where the full
    // design matrix applies.
    const unsigned shard_roll = static_cast<unsigned>(rng.nextBelow(8));
    tc.num_shards = shard_roll < 5 ? 1 : (shard_roll < 7 ? 2 : 4);

    if (tc.num_shards == 1) {
        const unsigned design_roll =
            static_cast<unsigned>(rng.nextBelow(5));
        tc.system.design = design_roll < 3 ? DesignKind::PsOram
                           : design_roll == 3 ? DesignKind::NaivePsOram
                                              : DesignKind::RcrPsOram;
    } else {
        // Sharded torture exercises per-shard recovery of the paper's
        // main design (recursive shards drive the same code path per
        // shard; the design matrix is covered unsharded).
        tc.system.design = DesignKind::PsOram;
    }

    tc.system.tree_height = 3 + static_cast<unsigned>(rng.nextBelow(3));
    tc.system.bucket_slots = 4;
    const TreeGeometry geo{tc.system.tree_height,
                           tc.system.bucket_slots};
    // 30-55 % utilization: dense enough for stash carry / backup use.
    tc.system.num_blocks =
        geo.numSlots() * (30 + rng.nextBelow(26)) / 100;
    if (tc.system.num_blocks < 8)
        tc.system.num_blocks = 8;
    tc.system.stash_capacity = 96;
    if (tc.system.design == DesignKind::RcrPsOram) {
        tc.system.wpq_entries = 96; // systemParams sizes the bundle up
    } else {
        const std::size_t wpqs[] = {2, 4, 8, 96};
        tc.system.wpq_entries = wpqs[rng.nextBelow(4)];
    }
    tc.system.cipher = CipherKind::FastStream;
    tc.system.seed = mix(iteration * 3 + 1);

    // Intra-shard pipelining: only the paper's main design runs the
    // staged engine (recursive/non-persistent stay synchronous, see
    // DESIGN.md §12), so only there is a depth draw meaningful.
    if (tc.system.design == DesignKind::PsOram) {
        const unsigned depths[] = {1, 2, 4};
        tc.system.pipeline_depth =
            depths[rng.nextBelow(3)];
    }

    // Occasional non-memory backend: a flat file-backed image, or the
    // out-of-core paged disk tree behind a small write-back page cache.
    // Disk fault injection is only supported on the synchronous access
    // path, so a disk draw forces pipeline depth 1 (DESIGN.md §14).
    const unsigned backend_roll =
        static_cast<unsigned>(rng.nextBelow(8));
    if (backend_roll == 0) {
        tc.system.backing_file =
            "torture_nvm_" + std::to_string(iteration) + ".img";
    } else if (backend_roll == 1) {
        tc.system.backend = BackendKind::Disk;
        tc.system.backing_file =
            "torture_disk_" + std::to_string(iteration) + ".tree";
        tc.system.disk_cache_pages = 16 + rng.nextBelow(49);
        tc.system.disk_pinned_pages = rng.nextBelow(5);
        tc.system.pipeline_depth = 1;
    }

    // Authenticated-record draw for the persistent non-recursive
    // designs (the integrity scope, see sim/system.cc): half the
    // eligible iterations run with a MAC or Merkle layer, so the
    // random crash+recovery audit also covers sealed records, the
    // per-round root record, and the I5 invariant. Integrity pins
    // pipeline depth to 1 (enforced by systemParams).
    if (tc.system.design == DesignKind::PsOram ||
        tc.system.design == DesignKind::NaivePsOram) {
        const unsigned integrity_roll =
            static_cast<unsigned>(rng.nextBelow(4));
        if (integrity_roll == 2)
            tc.system.integrity = IntegrityMode::Mac;
        else if (integrity_roll == 3)
            tc.system.integrity = IntegrityMode::Tree;
        if (tc.system.integrity != IntegrityMode::Off)
            tc.system.pipeline_depth = 1;
    }

    // Black box on half the iterations: the flight ring's side-channel
    // writes must never perturb the boundary domain or recovery. A
    // small ring forces wrap-around under a busy trace.
    if (rng.nextBool(0.5)) {
        tc.system.flight_recorder = true;
        tc.system.flight_records = rng.nextBool(0.5) ? 16 : 64;
    }

    tc.trace_ops = 48 + rng.nextBelow(81);
    const double wfs[] = {0.5, 0.6, 0.8};
    tc.write_fraction = wfs[rng.nextBelow(3)];
    tc.trace_seed = mix(iteration * 3 + 2);
    return tc;
}

void
scrubBackingFiles(const TortureCase &tc)
{
    if (tc.system.backing_file.empty())
        return;
    std::remove(tc.system.backing_file.c_str());
    std::remove((tc.system.backing_file + ".tmp").c_str());
    for (unsigned s = 0; s < tc.num_shards; ++s) {
        const std::string shard_file =
            tc.system.backing_file + ".shard" + std::to_string(s);
        std::remove(shard_file.c_str());
        std::remove((shard_file + ".tmp").c_str());
    }
}

/** Run counters (common/stats.hh Counters so the metrics exporter can
 *  snapshot them directly). */
struct IterationStats
{
    Counter fired;
    Counter not_fired;
    Counter boundaries;
    /** Aggregated over every recovery the torture run performed. */
    RecoveryStats recovery;
};

/**
 * Unsharded iteration: probe the boundary population, arm a uniformly
 * random boundary, replay, recover, check.
 */
std::vector<std::string>
runUnsharded(TortureCase &tc, Rng &rng, IterationStats &stats,
             const std::string &blackbox_path)
{
    CrashEnumConfig config;
    config.system = tc.system;
    config.trace = makeCrashTrace(tc.trace_seed, tc.trace_ops,
                                  tc.system.num_blocks,
                                  tc.write_fraction);
    config.blackbox_path = blackbox_path;
    config.recovery_stats = &stats.recovery;

    scrubBackingFiles(tc);
    std::uint64_t total = 0;
    {
        System system = buildSystem(config.system);
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        std::uint8_t buf[kBlockDataBytes];
        if (system.controller->pipelineSupported()) {
            // Probe the same way the armed replay will run (the
            // enumerator drives pipelined systems through an engine):
            // boundary indices are only comparable within one drive
            // mode.
            EngineConfig engine_config;
            engine_config.record_completions = false;
            OramEngine engine(*system.controller, engine_config);
            for (const TraceOp &op : config.trace) {
                if (op.is_write) {
                    stampPayload(op.addr, op.version, buf);
                    engine.submitWrite(op.addr, buf);
                } else {
                    engine.submitRead(op.addr);
                }
            }
            engine.drain();
        } else {
            for (const TraceOp &op : config.trace) {
                if (op.is_write) {
                    stampPayload(op.addr, op.version, buf);
                    system.controller->write(op.addr, buf);
                } else {
                    system.controller->read(op.addr, buf);
                }
            }
        }
        total = injector.boundariesSeen();
    }
    scrubBackingFiles(tc);
    if (total == 0)
        return {"probe run crossed no persist boundaries"};

    tc.armed_boundary = 1 + rng.nextBelow(total);
    stats.boundaries += total;
    ++stats.fired;
    std::vector<std::string> violations =
        runArmedCrash(config, tc.armed_boundary);
    // Success: scrub the backing files. Failure: keep them — they are
    // the crash evidence the report points at.
    if (violations.empty())
        scrubBackingFiles(tc);
    return violations;
}

/**
 * Sharded iteration: fault one victim shard at a random boundary while
 * the trace drives all shards through the router; recover the victim
 * only, then check every shard (the fault must not leak across the
 * partition) and run a verified cross-shard workload.
 */
std::vector<std::string>
runShardedInner(TortureCase &tc, Rng &rng, IterationStats &stats,
                const std::string &blackbox_path)
{
    ShardedSystemConfig config;
    config.base = tc.system;
    config.sharding.num_shards = tc.num_shards;
    config.sharding.policy = rng.nextBool(0.5) ? ShardPolicy::Interleave
                                               : ShardPolicy::Range;
    ShardedSystem sharded = buildShardedSystem(config);

    std::vector<RecoveryOracle> oracles(sharded.numShards());
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        sharded.controller(s).setCommitObserver(oracles[s].observer());
        sharded.shards[s].setRebindHook(
            [&oracles, s](PsOramController &ctrl) {
                ctrl.setCommitObserver(oracles[s].observer());
            });
    }

    const unsigned victim =
        static_cast<unsigned>(rng.nextBelow(sharded.numShards()));
    FaultInjector injector;
    sharded.shards[victim].attachFaultInjector(&injector);
    // No probe run (a sharded build is expensive): arm within an
    // estimate of the victim's boundary share. Overshoots simply don't
    // fire and still serve as a no-crash consistency audit.
    const std::uint64_t per_access =
        2 + 2ULL * TreeGeometry{tc.system.tree_height,
                                tc.system.bucket_slots}
                       .blocksPerPath();
    tc.armed_boundary =
        1 + rng.nextBelow(per_access * tc.trace_ops /
                          sharded.numShards());
    injector.armAt(tc.armed_boundary);

    const std::vector<TraceOp> trace =
        makeCrashTrace(tc.trace_seed, tc.trace_ops,
                       sharded.router.totalBlocks(), tc.write_fraction);
    bool crashed = false;
    std::uint8_t buf[kBlockDataBytes];
    if (sharded.controller(0).pipelineSupported()) {
        // Pipelined shards: drive every shard through its own engine so
        // the fault lands while fetches and background retires are
        // genuinely in flight. latest[] is bumped at submit — a
        // submitted-but-unretired write only widens the old-or-new
        // window the checker accepts. Engines are scoped: they must be
        // destroyed (fetch pools joined, retire queues idle) before the
        // victim controller is torn down for recovery.
        std::vector<std::unique_ptr<OramEngine>> engines;
        EngineConfig engine_config;
        engine_config.record_completions = false;
        for (unsigned s = 0; s < sharded.numShards(); ++s)
            engines.push_back(std::make_unique<OramEngine>(
                sharded.controller(s), engine_config));
        try {
            for (const TraceOp &op : trace) {
                const ShardSlot slot = sharded.router.route(op.addr);
                if (op.is_write) {
                    stampPayload(slot.local, op.version, buf);
                    oracles[slot.shard].latest[slot.local] = op.version;
                    engines[slot.shard]->submitWrite(slot.local, buf);
                } else {
                    engines[slot.shard]->submitRead(slot.local);
                }
            }
            for (auto &engine : engines)
                engine->drain();
        } catch (const InjectedFault &) {
            crashed = true;
        }
    } else {
        for (const TraceOp &op : trace) {
            const ShardSlot slot = sharded.router.route(op.addr);
            try {
                if (op.is_write) {
                    stampPayload(slot.local, op.version, buf);
                    sharded.controller(slot.shard).write(slot.local,
                                                         buf);
                    oracles[slot.shard].latest[slot.local] = op.version;
                } else {
                    sharded.controller(slot.shard).read(slot.local,
                                                        buf);
                }
            } catch (const InjectedFault &) {
                if (op.is_write)
                    oracles[slot.shard].latest[slot.local] = op.version;
                crashed = true;
                break;
            }
        }
    }
    // A boundary the trace never reached must not fire later, during
    // the checker's own reads or the post-recovery workload.
    injector.disarm();
    stats.boundaries += injector.boundariesSeen();

    std::vector<std::string> violations;
    if (crashed) {
        ++stats.fired;
        sharded.recoverShard(victim);
        stats.recovery.merge(*sharded.shards[victim].recovery_stats);
    } else {
        ++stats.not_fired;
    }
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        const std::string tag = "shard " + std::to_string(s) +
                                (s == victim ? " (victim)" : "") + ": ";
        for (std::string &v :
             checkRecoveryInvariants(sharded.shards[s], oracles[s]))
            violations.push_back(tag + std::move(v));
    }

    // Cross-shard post-recovery workload: every shard must still serve
    // verified reads and writes.
    Rng post_rng(tc.trace_seed ^ 0xabcdefULL);
    std::map<BlockAddr, std::uint32_t> post;
    for (std::size_t op = 0; op < 64; ++op) {
        const BlockAddr addr =
            post_rng.nextBelow(sharded.router.totalBlocks());
        const ShardSlot slot = sharded.router.route(addr);
        if (post_rng.nextBool(0.5)) {
            const auto version =
                static_cast<std::uint32_t>(2'000'000 + op);
            stampPayload(slot.local, version, buf);
            sharded.controller(slot.shard).write(slot.local, buf);
            post[addr] = version;
        } else if (post.count(addr)) {
            sharded.controller(slot.shard).read(slot.local, buf);
            if (payloadVersion(buf) != post[addr])
                violations.push_back(
                    "post-recovery sharded workload broken at global "
                    "addr " + std::to_string(addr));
        }
    }
    if (!violations.empty() && !blackbox_path.empty() &&
        sharded.shards[victim].flight_recorder) {
        // Ship the victim's black box with the failure report (the
        // shard images stay on disk as evidence too).
        const System &v = sharded.shards[victim];
        std::ofstream out(blackbox_path, std::ios::trunc);
        out << FlightRecorder::format(FlightRecorder::decode(
            *v.device, v.params.flight_recorder_base,
            v.params.flight_recorder_records));
    }
    return violations;
}

std::vector<std::string>
runSharded(TortureCase &tc, Rng &rng, IterationStats &stats,
           const std::string &blackbox_path)
{
    // Pre-clean leftovers from an earlier crashed process.
    scrubBackingFiles(tc);
    std::vector<std::string> violations =
        runShardedInner(tc, rng, stats, blackbox_path);
    // Only now are the shard Systems destroyed — a file-backed image
    // persists itself again in the backend destructor, so scrubbing
    // inside the inner scope would leave files behind. Success: scrub.
    // Failure: keep the images as crash evidence.
    if (violations.empty())
        scrubBackingFiles(tc);
    return violations;
}

int
tortureMain(const Options &options)
{
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    const bool tracing = !options.trace.empty();
    if (tracing)
        obs::TraceRecorder::instance().enable();

    IterationStats stats;
    Counter iterations_run;
    StatGroup torture_group("torture");
    torture_group.addCounter("iterations", &iterations_run,
                             "torture iterations completed");
    torture_group.addCounter("crashes_fired", &stats.fired,
                             "iterations whose armed fault fired");
    torture_group.addCounter("no_fire_audits", &stats.not_fired,
                             "iterations run as no-crash audits");
    torture_group.addCounter("boundaries_crossed", &stats.boundaries,
                             "persist boundaries crossed in total");
    stats.recovery.registerWith(torture_group, "recovery");
    const auto writeMetrics = [&](const std::string &path) {
        if (path.empty())
            return;
        obs::MetricsExporter exporter;
        exporter.addGroup(&torture_group);
        exporter.writeTo(path);
    };
    const std::string blackbox_path = options.report + ".blackbox.txt";

    std::uint64_t iteration = 0;
    while ((options.iterations == 0 ||
            iteration < options.iterations) &&
           (options.duration_s < 0 ||
            elapsed() < options.duration_s)) {
        // Per-iteration clear: on a failure the buffers hold exactly
        // the dying run.
        if (tracing)
            obs::TraceRecorder::instance().clear();
        Rng rng(mix(options.seed ^ mix(iteration)));
        TortureCase tc = drawCase(rng, iteration);
        std::vector<std::string> violations;
        try {
            violations =
                tc.num_shards == 1
                    ? runUnsharded(tc, rng, stats, blackbox_path)
                    : runSharded(tc, rng, stats, blackbox_path);
        } catch (const std::exception &e) {
            violations.push_back(std::string("unexpected exception: ") +
                                 e.what());
        }
        if (!violations.empty()) {
            std::ostringstream report;
            report << "torture_crash FAILURE\n"
                   << "  seed:      " << options.seed << "\n"
                   << "  iteration: " << iteration << "\n"
                   << "  config:    " << tc.describe() << "\n"
                   << "  reproduce: torture_crash --seed="
                   << options.seed << " --iterations="
                   << (iteration + 1) << "\n";
            for (const std::string &v : violations)
                report << "  violation: " << v << "\n";
            if (tracing) {
                obs::TraceRecorder::instance().writeTo(options.trace);
                report << "  trace:     " << options.trace << "\n";
            }
            // A failure ships its full forensics bundle: metrics
            // snapshot (recovery phase latencies + counters) and, when
            // the dying config ran the black box, the decoded flight
            // ring. Both land next to the report for CI to upload.
            const std::string metrics_path =
                options.metrics.empty() ? options.report + ".metrics.json"
                                        : options.metrics;
            writeMetrics(metrics_path);
            report << "  metrics:   " << metrics_path << "\n";
            if (std::ifstream(blackbox_path).good())
                report << "  blackbox:  " << blackbox_path << "\n";
            std::cerr << report.str();
            std::ofstream out(options.report, std::ios::trunc);
            out << report.str();
            return 1;
        }
        ++iteration;
        ++iterations_run;
        if (iteration % 1000 == 0)
            std::cout << "torture: " << iteration << " iterations, "
                      << stats.fired.value() << " crashes fired, "
                      << stats.not_fired.value() << " no-fire audits, "
                      << stats.boundaries.value()
                      << " boundaries crossed (" << elapsed() << " s)\n";
    }

    std::cout << "torture: PASS — " << iteration << " iterations, "
              << stats.fired.value() << " crashes fired, "
              << stats.not_fired.value() << " no-fire audits, "
              << stats.boundaries.value()
              << " boundaries crossed in " << elapsed() << " s (seed "
              << options.seed << ")\n";
    writeMetrics(options.metrics);
    return 0;
}

bool
parseFlag(const std::string &arg, const char *name, std::string &value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

} // namespace
} // namespace psoram

int
main(int argc, char **argv)
{
    psoram::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (psoram::parseFlag(arg, "--seed", value))
            options.seed = std::stoull(value);
        else if (psoram::parseFlag(arg, "--duration", value))
            options.duration_s = std::stod(value);
        else if (psoram::parseFlag(arg, "--iterations", value))
            options.iterations = std::stoull(value);
        else if (psoram::parseFlag(arg, "--report", value))
            options.report = value;
        else if (psoram::parseFlag(arg, "--trace", value))
            options.trace = value;
        else if (psoram::parseFlag(arg, "--metrics", value))
            options.metrics = value;
        else {
            std::cerr << "usage: torture_crash [--seed=N] "
                         "[--duration=SECONDS] [--iterations=N] "
                         "[--report=PATH] [--trace=PATH] "
                         "[--metrics=PATH]\n";
            return arg == "--help" ? 0 : 2;
        }
    }
    // Bound by something: 10 s of torture when no limit was given.
    if (options.iterations == 0 && options.duration_s < 0)
        options.duration_s = 10.0;
    return psoram::tortureMain(options);
}
