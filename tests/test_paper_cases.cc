/**
 * @file
 * Direct reproductions of the paper's §3.3 case studies (Figure 2) and
 * their §4.3 resolutions — one test per case, written to mirror the
 * paper's narrative:
 *
 *   Case 1: crash in step 3 (after the remap, during the path load)
 *   Case 2: crash in step 4 (path loaded, before eviction)
 *   Case 3: crash in step 5 (during the eviction / before the next
 *           access), including the Figure 3 overwritten-block scenario
 */

#include <gtest/gtest.h>

#include <cstring>

#include "psoram/recovery.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
caseConfig(DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 6;
    config.num_blocks = 100;
    config.stash_capacity = 64;
    config.cipher = CipherKind::FastStream;
    config.seed = 321;
    return config;
}

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t v = 0;
    std::memcpy(&v, data + 8, sizeof(v));
    return v;
}

/** Populate every block and drain the stash so values are committed. */
void
populate(System &system)
{
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < 100; ++addr) {
        payload(addr, static_cast<std::uint32_t>(addr + 1), buf);
        system.controller->write(addr, buf);
    }
}

/** Read @p addr and return its payload version after recovery. */
std::uint32_t
recoveredVersion(System &system, BlockAddr addr)
{
    std::uint8_t buf[kBlockDataBytes];
    system.controller->read(addr, buf);
    return versionOf(buf);
}

TEST(PaperCase1, CrashDuringLoadRecoversViaUncommittedRemap)
{
    // §4.3 Case 1: the new path id lives only in the temporary PosMap;
    // a crash during step 3 loses it together with the stash, and the
    // (persistent) PosMap still holds the old, consistent mapping —
    // "the ORAM controller can re-read this path id ... and correctly
    // access the data of interest in the original path".
    System system = buildSystem(caseConfig(DesignKind::PsOram));
    populate(system);

    CrashAtOccurrence policy(CrashSite::DuringLoad, 1);
    system.controller->setCrashPolicy(&policy);
    std::uint8_t buf[kBlockDataBytes];
    BlockAddr victim = kDummyBlockAddr;
    for (BlockAddr addr = 0; addr < 100 && victim == kDummyBlockAddr;
         ++addr) {
        if (system.controller->stash().find(addr))
            continue; // a stash hit would skip step 3
        try {
            system.controller->read(addr, buf);
        } catch (const CrashEvent &) {
            victim = addr;
        }
    }
    ASSERT_NE(victim, kDummyBlockAddr);

    system.recoverController();
    EXPECT_EQ(recoveredVersion(system, victim),
              static_cast<std::uint32_t>(victim + 1));
}

TEST(PaperCase2, CrashAfterLoadLosesNothingCommitted)
{
    // §4.3 Case 2: the path was fetched into the (volatile) stash but
    // the eviction has not rewritten the tree yet — the NVM still holds
    // every block; recovery re-reads them from the data content region.
    System system = buildSystem(caseConfig(DesignKind::PsOram));
    populate(system);

    CrashAtOccurrence policy(CrashSite::AfterStashUpdate, 1);
    system.controller->setCrashPolicy(&policy);
    std::uint8_t buf[kBlockDataBytes];
    BlockAddr victim = kDummyBlockAddr;
    for (BlockAddr addr = 0; addr < 100 && victim == kDummyBlockAddr;
         ++addr) {
        if (system.controller->stash().find(addr))
            continue;
        try {
            system.controller->read(addr, buf);
        } catch (const CrashEvent &) {
            victim = addr;
        }
    }
    ASSERT_NE(victim, kDummyBlockAddr);

    system.recoverController();
    // The victim AND every other block of the loaded path survive.
    for (BlockAddr addr = 0; addr < 100; ++addr)
        EXPECT_EQ(recoveredVersion(system, addr),
                  static_cast<std::uint32_t>(addr + 1))
            << "addr " << addr;
}

TEST(PaperCase3, PartialWritebackCannotDestroyLiveBlocks)
{
    // §3.3 Case 3 / Figure 3: with a tiny (4-entry) WPQ the eviction
    // needs many rounds; a crash between any two rounds must not leave
    // a block overwritten whose relocated copy never became durable —
    // the scenario where blocks a and b are destroyed by c and f in
    // Figure 3. Safe placement + the atomic bracket prevent it at
    // every possible round boundary.
    for (std::uint64_t occurrence = 1; occurrence <= 40;
         occurrence += 3) {
        SystemConfig config = caseConfig(DesignKind::PsOram);
        config.wpq_entries = 4;
        System system = buildSystem(config);
        populate(system);

        CrashAtOccurrence policy(CrashSite::BetweenRounds, occurrence);
        system.controller->setCrashPolicy(&policy);
        std::uint8_t buf[kBlockDataBytes];
        bool crashed = false;
        std::map<BlockAddr, std::uint32_t> updated;
        for (int op = 0; op < 60 && !crashed; ++op) {
            const BlockAddr addr = static_cast<BlockAddr>(op) % 100;
            payload(addr, 1000 + op, buf);
            try {
                system.controller->write(addr, buf);
                updated[addr] = static_cast<std::uint32_t>(1000 + op);
            } catch (const CrashEvent &) {
                crashed = true;
                updated[addr] = static_cast<std::uint32_t>(1000 + op);
            }
        }
        ASSERT_TRUE(crashed) << "occurrence " << occurrence;

        system.recoverController();
        for (BlockAddr addr = 0; addr < 100; ++addr) {
            const std::uint32_t v = recoveredVersion(system, addr);
            const auto it = updated.find(addr);
            if (it == updated.end()) {
                // Untouched since populate: must hold its value.
                EXPECT_EQ(v, static_cast<std::uint32_t>(addr + 1))
                    << "addr " << addr << " destroyed (Figure 3!)";
            } else {
                // Updated: old-or-new, never zero/garbage.
                EXPECT_TRUE(v == addr + 1 || v == it->second)
                    << "addr " << addr << " got " << v;
            }
        }
    }
}

TEST(PaperCase1Baseline, SameCrashDestroysTheBaseline)
{
    // The §3.3 motivation: in the original Path ORAM the PosMap update
    // of step 2 is already in effect when the crash hits, and with a
    // volatile PosMap nothing can be located afterwards.
    System system = buildSystem(caseConfig(DesignKind::Baseline));
    populate(system);

    CrashAtOccurrence policy(CrashSite::DuringLoad, 1);
    system.controller->setCrashPolicy(&policy);
    std::uint8_t buf[kBlockDataBytes];
    bool crashed = false;
    for (BlockAddr addr = 0; addr < 100 && !crashed; ++addr) {
        try {
            system.controller->read(addr, buf);
        } catch (const CrashEvent &) {
            crashed = true;
        }
    }
    ASSERT_TRUE(crashed);

    system.recoverController();
    std::size_t lost = 0;
    for (BlockAddr addr = 0; addr < 100; ++addr)
        if (recoveredVersion(system, addr) !=
            static_cast<std::uint32_t>(addr + 1))
            ++lost;
    EXPECT_GT(lost, 0u);
}

} // namespace
} // namespace psoram
