/**
 * @file
 * Protocol-phase unit tests: each phase component runs against a
 * PhaseEnv assembled from stand-alone subsystems — no controller.
 *
 * This is the point of the phase decomposition: the remap staging rule
 * (step 2) and the safe-placement eviction (step 5) are checked in
 * isolation, with the test owning every piece of state the phase reads
 * or writes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "nvm/device.hh"
#include "nvm/timing.hh"
#include "psoram/evictor.hh"
#include "psoram/phase_env.hh"
#include "psoram/remapper.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

/** Stand-alone subsystem bundle a PhaseEnv can borrow from. */
struct PhaseRig
{
    explicit PhaseRig(DesignKind design)
        : params(makeParams(design)),
          device(pcmTimings(), 1, 8, 64ULL << 20),
          codec(params.key, params.cipher), rng(params.seed ^ 0xabcd),
          stash(params.stash_capacity),
          temp(params.design.temp_posmap_entries),
          volatile_posmap(params.num_blocks,
                          params.data_layout.geometry.numLeaves(),
                          params.seed),
          persistent_posmap(params.posmap_region_base, params.num_blocks,
                            params.seed,
                            params.data_layout.geometry.numLeaves())
    {
        if (params.design.persist != PersistMode::None)
            drainer = std::make_unique<Drainer>(
                params.design.wpq_entries, params.design.wpq_entries);
        env = std::make_unique<PhaseEnv>(PhaseEnv{
            params, params.data_layout.geometry, device, codec, rng,
            stash, temp, volatile_posmap, persistent_posmap, counters,
            nullptr, nullptr, nullptr, nullptr, drainer.get(), nullptr,
            nullptr, nullptr, 0});
    }

    static PsOramParams
    makeParams(DesignKind design)
    {
        SystemConfig config;
        config.design = design;
        config.tree_height = 5;
        config.num_blocks = 60;
        config.stash_capacity = 64;
        config.seed = 7;
        return systemParams(config);
    }

    PsOramParams params;
    NvmDevice device;
    BlockCodec codec;
    Rng rng;
    Stash stash;
    TempPosMap temp;
    PosMap volatile_posmap;
    PersistentPosMap persistent_posmap;
    ProtocolCounters counters;
    std::unique_ptr<Drainer> drainer;
    std::unique_ptr<PhaseEnv> env;
};

TEST(RemapperPhase, PersistentDesignStagesRemapInTempPosMap)
{
    PhaseRig rig(DesignKind::PsOram);
    Remapper remapper(*rig.env);

    const BlockAddr addr = 13;
    const PathId committed_before = rig.env->committedPath(addr);

    AccessContext ctx;
    ctx.addr = addr;
    remapper.run(ctx);

    // The phase reports the committed path and picks a distinct target.
    EXPECT_EQ(ctx.leaf, committed_before);
    EXPECT_NE(ctx.new_leaf, ctx.leaf);

    // The remap is *staged*: the temporary PosMap holds the new label,
    // the committed (persistent) map is untouched until eviction.
    const auto staged = rig.temp.get(addr);
    ASSERT_TRUE(staged.has_value());
    EXPECT_EQ(*staged, ctx.new_leaf);
    EXPECT_EQ(rig.env->committedPath(addr), committed_before);
}

TEST(RemapperPhase, NonPersistentDesignWritesVolatileMapThrough)
{
    PhaseRig rig(DesignKind::Baseline);
    Remapper remapper(*rig.env);

    const BlockAddr addr = 21;
    const PathId before = rig.volatile_posmap.get(addr);

    AccessContext ctx;
    ctx.addr = addr;
    remapper.run(ctx);

    EXPECT_EQ(ctx.leaf, before);
    // Baseline updates the volatile map immediately and stages nothing.
    EXPECT_EQ(rig.volatile_posmap.get(addr), ctx.new_leaf);
    EXPECT_FALSE(rig.temp.get(addr).has_value());
}

TEST(RemapperPhase, DistinctLeafRuleCountsForcedMergesWhenTempFull)
{
    PhaseRig rig(DesignKind::PsOram);
    Remapper remapper(*rig.env);
    // Fill the temporary PosMap to capacity (keys outside the remapped
    // block's address so nothing collides), then remap one more block.
    const std::size_t cap = rig.params.design.temp_posmap_entries;
    for (std::size_t i = 0; i < cap; ++i)
        rig.temp.put(static_cast<BlockAddr>(1000 + i), 0);
    AccessContext ctx;
    ctx.addr = 50;
    remapper.run(ctx);
    EXPECT_EQ(rig.counters.forced_merges.value(), 1u);
}

TEST(EvictorPhase, PlacesStashBlockOnPathAndCommitsAtomically)
{
    PhaseRig rig(DesignKind::PsOram);
    Evictor evictor(*rig.env);

    // One dirty block in the stash, mapped onto the eviction path.
    const BlockAddr addr = 5;
    const PathId leaf = 9;
    StashEntry entry;
    entry.addr = addr;
    entry.path = leaf;
    entry.epoch = 1;
    entry.data[0] = 0xCE;
    rig.stash.insert(entry);
    rig.temp.put(addr, leaf); // pending remap -> DirtyOnly metadata

    AccessContext ctx;
    ctx.addr = addr;
    ctx.leaf = leaf;
    // Empty ctx.slots: the whole path previously held dummies, so every
    // slot is a safe placement site.
    evictor.run(ctx);

    // The block left the stash and one atomic round was issued.
    EXPECT_EQ(rig.stash.find(addr), nullptr);
    ASSERT_NE(rig.drainer, nullptr);
    EXPECT_GE(rig.drainer->roundsIssued(), 1u);
    // Its pending remap entry was merged (committed) out of the
    // temporary PosMap.
    EXPECT_FALSE(rig.temp.get(addr).has_value());

    // The block is findable on the path in the NVM image.
    const TreeGeometry &geo = rig.params.data_layout.geometry;
    bool found = false;
    for (unsigned level = 0; level <= geo.height && !found; ++level) {
        const BucketId bucket = geo.bucketAt(leaf, level);
        for (unsigned s = 0; s < geo.bucket_slots; ++s) {
            SlotBytes raw{};
            rig.device.readBytes(
                rig.params.data_layout.slotAddr(bucket, s), raw.data(),
                kSlotBytes);
            const PlainBlock block = rig.codec.decode(raw);
            if (!block.isDummy() && block.addr == addr) {
                EXPECT_EQ(block.data[0], 0xCE);
                found = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(EvictorPhase, EveryPathSlotIsRewrittenObliviously)
{
    PhaseRig rig(DesignKind::PsOram);
    Evictor evictor(*rig.env);

    AccessContext ctx;
    ctx.addr = 3;
    ctx.leaf = 4;
    evictor.run(ctx);

    // Even with an empty stash the full path is re-emitted: one write
    // per slot (obliviousness — the adversary learns nothing from which
    // slots change).
    const TreeGeometry &geo = rig.params.data_layout.geometry;
    EXPECT_GE(rig.device.totalWrites(), geo.blocksPerPath());
}

TEST(EvictorPhase, NonPersistentDesignWritesBackDirectly)
{
    PhaseRig rig(DesignKind::Baseline);
    Evictor evictor(*rig.env);
    ASSERT_EQ(rig.drainer, nullptr);

    StashEntry entry;
    entry.addr = 2;
    entry.path = 6;
    rig.stash.insert(entry);

    AccessContext ctx;
    ctx.addr = 2;
    ctx.leaf = 6;
    evictor.run(ctx);

    // Greedy write-back without any WPQ bracket.
    EXPECT_EQ(rig.stash.find(2), nullptr);
    EXPECT_GT(rig.device.totalWrites(), 0u);
}

} // namespace
} // namespace psoram
