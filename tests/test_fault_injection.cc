/**
 * @file
 * Exhaustive crash-point enumeration (sim/crash_enumerator.hh).
 *
 * These tests realize the paper's §4.3 argument mechanically: for a
 * fixed 64-access trace, *every* persist boundary the system crosses is
 * turned into a crash, recovered from, and checked against the full
 * recovery-invariant set. The matrix covers the non-recursive design at
 * limited (§4.2.3) and unlimited WPQ sizes, the Naive-PS-ORAM ablation,
 * and the recursive design.
 *
 * The negative control disables backup blocks (§4.2.2) and requires the
 * enumerator to *catch* the resulting data loss — a checker that passes
 * a known-broken build is itself broken.
 */

#include <gtest/gtest.h>

#include "sim/crash_enumerator.hh"

namespace psoram {
namespace {

// ~40 % tree utilization: dense enough that evictions regularly fail
// to place re-accessed blocks (stash carry), which is exactly the
// state where the §4.2.2 backup blocks carry the recovery guarantee.
constexpr std::uint64_t kBlocks = 48;
constexpr std::size_t kTraceOps = 64;

SystemConfig
enumConfig(DesignKind design, std::size_t wpq = 96)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 4;
    config.bucket_slots = 4;
    config.num_blocks = kBlocks;
    config.stash_capacity = 64;
    config.wpq_entries = wpq;
    config.cipher = CipherKind::FastStream;
    config.seed = 1234;
    return config;
}

CrashEnumConfig
enumCase(DesignKind design, std::size_t wpq)
{
    CrashEnumConfig config;
    config.system = enumConfig(design, wpq);
    config.trace =
        makeCrashTrace(/*seed=*/42, kTraceOps, kBlocks, 0.6);
    return config;
}

void
expectAllCrashPointsRecover(const CrashEnumConfig &config)
{
    const CrashEnumSummary summary = enumerateCrashPoints(config);
    // The trace must actually exercise a meaningful boundary domain:
    // at minimum one round bracket per eviction-bearing access.
    EXPECT_GE(summary.total_boundaries, kTraceOps)
        << summary.describe();
    EXPECT_EQ(summary.replays, summary.total_boundaries);
    EXPECT_TRUE(summary.ok()) << summary.describe();
    for (const CrashPointFailure &failure : summary.failures)
        for (const std::string &violation : failure.violations)
            ADD_FAILURE() << violation;
}

struct EnumCase
{
    DesignKind design;
    std::size_t wpq;
    const char *name;
};

class ExhaustiveCrashPoints : public ::testing::TestWithParam<EnumCase>
{
};

TEST_P(ExhaustiveCrashPoints, EveryPersistBoundaryRecovers)
{
    expectAllCrashPointsRecover(
        enumCase(GetParam().design, GetParam().wpq));
}

// §4.2.3 limited persistence domains {2, 8} force multi-round
// evictions with crash windows between rounds; 96 never splits a
// path (unlimited for this geometry). Recursive designs need the
// atomic bundle, so systemParams sizes their WPQ up internally.
const EnumCase kEnumCases[] = {
    {DesignKind::PsOram, 2, "PsOram_wpq2"},
    {DesignKind::PsOram, 8, "PsOram_wpq8"},
    {DesignKind::PsOram, 96, "PsOram_wpq96"},
    {DesignKind::NaivePsOram, 96, "NaivePsOram"},
    {DesignKind::RcrPsOram, 96, "RcrPsOram"},
};

INSTANTIATE_TEST_SUITE_P(Designs, ExhaustiveCrashPoints,
                         ::testing::ValuesIn(kEnumCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(CrashEnumeratorProbe, BoundaryPopulationIsDeterministic)
{
    // The whole scheme rests on replayability: two probe runs of the
    // same (config, trace) must count identical boundary populations.
    const CrashEnumConfig config = enumCase(DesignKind::PsOram, 8);
    auto probe = [&config]() {
        System system = buildSystem(config.system);
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        std::uint8_t buf[kBlockDataBytes];
        for (const TraceOp &op : config.trace) {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                system.controller->write(op.addr, buf);
            } else {
                system.controller->read(op.addr, buf);
            }
        }
        return injector.boundariesSeen();
    };
    const std::uint64_t first = probe();
    const std::uint64_t second = probe();
    EXPECT_EQ(first, second);
    EXPECT_GT(first, 0u);
}

TEST(CrashEnumeratorProbe, RoundBracketsBalance)
{
    // Every committed round opens exactly once: starts == commits when
    // no fault interrupts the trace.
    const CrashEnumConfig config = enumCase(DesignKind::PsOram, 8);
    System system = buildSystem(config.system);
    FaultInjector injector;
    system.attachFaultInjector(&injector);
    std::uint8_t buf[kBlockDataBytes];
    for (const TraceOp &op : config.trace) {
        if (op.is_write) {
            stampPayload(op.addr, op.version, buf);
            system.controller->write(op.addr, buf);
        } else {
            system.controller->read(op.addr, buf);
        }
    }
    EXPECT_EQ(injector.kindCount(PersistBoundary::RoundStart),
              injector.kindCount(PersistBoundary::RoundCommit));
    EXPECT_GT(injector.kindCount(PersistBoundary::DrainWrite), 0u);
}

TEST(CrashEnumeratorNegative, MissingBackupBlocksAreDetected)
{
    // Known-broken build: suppress §4.2.2 backup blocks. With a
    // 2-entry WPQ an eviction spans many rounds; a committed early
    // round destroys the re-accessed block's old tree copy while its
    // new value waits in a later, still-uncommitted round — without
    // the backup some inter-round crash point must lose data, and the
    // enumerator must say so.
    CrashEnumConfig config = enumCase(DesignKind::PsOram, 2);
    config.system.disable_backup_blocks = true;
    config.system.num_blocks = 60;
    config.trace = makeCrashTrace(/*seed=*/42, 96, 60, 0.8);
    const CrashEnumSummary summary = enumerateCrashPoints(config);
    EXPECT_FALSE(summary.ok())
        << "checker failed to detect data loss in a build without "
           "backup blocks: "
        << summary.describe();
}

} // namespace
} // namespace psoram
