/**
 * @file
 * Security/obliviousness property tests (paper §4.6).
 *
 * The adversary sees the sequence of path (leaf) identifiers on the
 * memory bus. The tests check, for both the classic controller and
 * PS-ORAM:
 *   - observed leaves are uniformly distributed (chi-square),
 *   - the leaf sequence is independent of the program's access pattern
 *     (sequential scan vs single hot block look alike),
 *   - reads and writes are indistinguishable in traffic,
 *   - PS-ORAM's persistence machinery adds no observable change to the
 *     path sequence distribution (Claims 1-3).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "oram/controller.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

constexpr unsigned kHeight = 6; // 64 leaves
constexpr std::uint64_t kBlocks = 120;

SystemConfig
secConfig(DesignKind design, std::uint64_t seed)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = kHeight;
    config.num_blocks = kBlocks;
    config.stash_capacity = 64;
    config.cipher = CipherKind::FastStream;
    config.seed = seed;
    return config;
}

/** Chi-square statistic of observed leaves against uniform. */
double
chiSquare(const std::vector<PathId> &leaves, std::uint64_t num_leaves)
{
    std::vector<double> histogram(num_leaves, 0.0);
    for (const PathId leaf : leaves)
        histogram[leaf] += 1.0;
    const double expected =
        static_cast<double>(leaves.size()) /
        static_cast<double>(num_leaves);
    double chi2 = 0.0;
    for (const double observed : histogram)
        chi2 += (observed - expected) * (observed - expected) / expected;
    return chi2;
}

// 99.9th percentile of chi-square with 63 degrees of freedom ~ 103.4;
// use a generous 120 to keep the test robust.
constexpr double kChi2Bound63 = 120.0;

std::vector<PathId>
observeWorkload(DesignKind design, std::uint64_t seed, bool sequential,
                int accesses)
{
    System system = buildSystem(secConfig(design, seed));
    std::vector<PathId> leaves;
    system.controller->setPathObserver(
        [&](PathId leaf) { leaves.push_back(leaf); });
    Rng rng(seed * 31 + 7);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < accesses; ++op) {
        const BlockAddr addr = sequential
            ? static_cast<BlockAddr>(op) % kBlocks
            : rng.nextBelow(8); // pathological hot set of 8 blocks
        if (op % 2 == 0)
            system.controller->write(addr, buf);
        else
            system.controller->read(addr, buf);
    }
    return leaves;
}

TEST(Security, ClassicPathOramLeavesAreUniform)
{
    NvmDevice device(pcmTimings(), 1, 8, 64ULL << 20);
    PathOramParams params;
    params.layout.geometry = TreeGeometry{kHeight, 4};
    params.num_blocks = kBlocks;
    params.stash_capacity = 64;
    params.cipher = CipherKind::FastStream;
    params.seed = 17;
    PathOramController oram(params, device);

    std::vector<PathId> leaves;
    oram.setPathObserver([&](PathId leaf) { leaves.push_back(leaf); });
    Rng rng(3);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 6000; ++op)
        oram.write(rng.nextBelow(kBlocks), buf);

    EXPECT_LT(chiSquare(leaves, 1ULL << kHeight), kChi2Bound63);
}

TEST(Security, PsOramLeavesAreUniform)
{
    const auto leaves =
        observeWorkload(DesignKind::PsOram, 17, true, 6000);
    ASSERT_GT(leaves.size(), 3000u);
    EXPECT_LT(chiSquare(leaves, 1ULL << kHeight), kChi2Bound63);
}

TEST(Security, HotBlockWorkloadLooksUniformToo)
{
    // Even a pathological workload hammering 8 blocks produces a
    // uniform leaf sequence — the obfuscation at work.
    const auto leaves =
        observeWorkload(DesignKind::PsOram, 23, false, 6000);
    ASSERT_GT(leaves.size(), 1000u);
    EXPECT_LT(chiSquare(leaves, 1ULL << kHeight), kChi2Bound63);
}

TEST(Security, AccessPatternsAreIndistinguishable)
{
    // Compare the leaf DISTRIBUTIONS of a sequential scan and a hot-set
    // workload: a distinguisher should see statistically equal
    // behaviour. Use a two-sample chi-square over leaf histograms.
    const auto a = observeWorkload(DesignKind::PsOram, 29, true, 6000);
    const auto b = observeWorkload(DesignKind::PsOram, 29, false, 6000);
    const std::uint64_t num_leaves = 1ULL << kHeight;

    std::vector<double> ha(num_leaves, 0.0), hb(num_leaves, 0.0);
    for (const PathId leaf : a)
        ha[leaf] += 1.0;
    for (const PathId leaf : b)
        hb[leaf] += 1.0;
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    double chi2 = 0.0;
    for (std::uint64_t leaf = 0; leaf < num_leaves; ++leaf) {
        const double total = ha[leaf] + hb[leaf];
        if (total == 0.0)
            continue;
        const double ea = total * na / (na + nb);
        const double eb = total * nb / (na + nb);
        chi2 += (ha[leaf] - ea) * (ha[leaf] - ea) / ea +
                (hb[leaf] - eb) * (hb[leaf] - eb) / eb;
    }
    EXPECT_LT(chi2, kChi2Bound63);
}

TEST(Security, ReadsAndWritesProduceIdenticalTraffic)
{
    // An access is a path read + path eviction regardless of direction.
    const auto traffic = [&](bool writes) {
        System system = buildSystem(secConfig(DesignKind::PsOram, 31));
        std::uint8_t buf[kBlockDataBytes] = {};
        for (int op = 0; op < 200; ++op) {
            const BlockAddr addr = static_cast<BlockAddr>(op) % kBlocks;
            if (writes)
                system.controller->write(addr, buf);
            else
                system.controller->read(addr, buf);
        }
        return system.controller->traffic();
    };
    const TrafficCounts r = traffic(false);
    const TrafficCounts w = traffic(true);
    EXPECT_EQ(r.reads, w.reads);
    EXPECT_EQ(w.writes, r.writes);
}

TEST(Security, PsOramAccessesSamePathSetAsBaseline)
{
    // Claim 3: the data blocks written back from the WPQ cover exactly
    // the same addresses as the baseline's eviction (one full path);
    // PS-ORAM only adds (trusted-region) metadata writes.
    const unsigned per_path = TreeGeometry{kHeight, 4}.blocksPerPath();

    System base = buildSystem(secConfig(DesignKind::Baseline, 37));
    System ps = buildSystem(secConfig(DesignKind::PsOram, 37));
    std::uint8_t buf[kBlockDataBytes] = {};
    base.controller->write(1, buf);
    ps.controller->write(1, buf);

    EXPECT_EQ(base.controller->traffic().reads, per_path);
    EXPECT_EQ(ps.controller->traffic().reads, per_path);
    EXPECT_EQ(base.controller->traffic().writes, per_path);
    // PS-ORAM: same path writes + at most a few metadata entries.
    EXPECT_GE(ps.controller->traffic().writes, per_path);
    EXPECT_LE(ps.controller->traffic().writes, per_path + 4);
}

TEST(Security, RepeatedAccessToSameBlockUsesFreshPaths)
{
    System system = buildSystem(secConfig(DesignKind::PsOram, 41));
    std::vector<PathId> leaves;
    system.controller->setPathObserver(
        [&](PathId leaf) { leaves.push_back(leaf); });
    std::uint8_t buf[kBlockDataBytes] = {};
    // Interleave with enough other traffic that block 3 leaves the
    // stash between touches.
    for (int round = 0; round < 60; ++round) {
        system.controller->write(3, buf);
        for (BlockAddr a = 20; a < 50; ++a)
            system.controller->write(a, buf);
    }
    // Count consecutive-equal leaves across all observations as a crude
    // linkability measure; with 64 leaves it should be rare.
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < leaves.size(); ++i)
        repeats += (leaves[i] == leaves[i - 1]);
    EXPECT_LT(static_cast<double>(repeats) /
                  static_cast<double>(leaves.size()),
              0.08);
}

/** 99.9+ percentile bound for chi-square with @p df degrees of
 *  freedom (mean df, variance 2df; five sigma keeps it robust — for
 *  df = 63 this reproduces the kChi2Bound63 = 120 used above). */
double
chi2Bound(std::uint64_t df)
{
    return static_cast<double>(df) +
           5.0 * std::sqrt(2.0 * static_cast<double>(df));
}

/**
 * Sharded engine obliviousness: every shard is an unmodified ORAM over
 * its slice, so uniformity must hold *per shard* against each shard's
 * own leaf range — that is the composition argument of the sharded
 * design (common/sharding.hh). A single global histogram could hide a
 * skewed shard behind a balanced one.
 */
void
expectShardedLeavesUniform(unsigned num_shards, ShardPolicy policy,
                           std::uint64_t seed)
{
    ShardedSystemConfig config;
    config.base = secConfig(DesignKind::PsOram, seed);
    config.sharding.num_shards = num_shards;
    config.sharding.policy = policy;
    ShardedSystem sharded = buildShardedSystem(config);

    std::vector<std::vector<PathId>> leaves(sharded.numShards());
    for (unsigned s = 0; s < sharded.numShards(); ++s)
        sharded.controller(s).setPathObserver(
            [&leaves, s](PathId leaf) { leaves[s].push_back(leaf); });

    Rng rng(seed * 131 + 5);
    std::uint8_t buf[kBlockDataBytes] = {};
    const int accesses = 4000 * static_cast<int>(num_shards);
    for (int op = 0; op < accesses; ++op) {
        const ShardSlot slot =
            sharded.router.route(rng.nextBelow(kBlocks));
        if (op % 2 == 0)
            sharded.controller(slot.shard).write(slot.local, buf);
        else
            sharded.controller(slot.shard).read(slot.local, buf);
    }

    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        const std::uint64_t shard_leaves =
            sharded.shards[s]
                .params.data_layout.geometry.numLeaves();
        ASSERT_GT(leaves[s].size(), shard_leaves * 20)
            << "shard " << s << " barely exercised ("
            << shardPolicyName(policy) << ")";
        EXPECT_LT(chiSquare(leaves[s], shard_leaves),
                  chi2Bound(shard_leaves - 1))
            << "shard " << s << " leaf distribution skewed ("
            << shardPolicyName(policy) << ", " << num_shards
            << " shards)";
    }
}

TEST(Security, ShardedLeavesAreUniformPerShard2)
{
    expectShardedLeavesUniform(2, ShardPolicy::Interleave, 51);
}

TEST(Security, ShardedLeavesAreUniformPerShard4)
{
    expectShardedLeavesUniform(4, ShardPolicy::Interleave, 53);
}

TEST(Security, ShardedLeavesAreUniformPerShardRangePolicy)
{
    expectShardedLeavesUniform(4, ShardPolicy::Range, 57);
}

TEST(Security, SingleShardMatchesUnshardedLeafSequence)
{
    // The 1-shard engine is documented as *identical* to the unsharded
    // stack — the observed leaf sequences must match element-wise, so
    // sharding cannot introduce a distinguishable bus pattern.
    ShardedSystemConfig config;
    config.base = secConfig(DesignKind::PsOram, 61);
    config.sharding.num_shards = 1;
    ShardedSystem sharded = buildShardedSystem(config);
    System plain = buildSystem(secConfig(DesignKind::PsOram, 61));

    std::vector<PathId> sharded_leaves, plain_leaves;
    sharded.controller(0).setPathObserver(
        [&](PathId leaf) { sharded_leaves.push_back(leaf); });
    plain.controller->setPathObserver(
        [&](PathId leaf) { plain_leaves.push_back(leaf); });

    Rng rng(62);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 1500; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const ShardSlot slot = sharded.router.route(addr);
        if (op % 2 == 0) {
            sharded.controller(slot.shard).write(slot.local, buf);
            plain.controller->write(addr, buf);
        } else {
            sharded.controller(slot.shard).read(slot.local, buf);
            plain.controller->read(addr, buf);
        }
    }
    EXPECT_EQ(sharded_leaves, plain_leaves);
}

TEST(Security, DummyAndRealSlotsIndistinguishableOnBus)
{
    // Every eviction writes all Z(L+1) slots with fresh ciphertexts;
    // the bus-level write count carries no information about how many
    // real blocks moved.
    System a = buildSystem(secConfig(DesignKind::PsOram, 43));
    System b = buildSystem(secConfig(DesignKind::PsOram, 43));
    std::uint8_t buf[kBlockDataBytes] = {};
    // System a: dense writes; system b: single cold read.
    for (BlockAddr addr = 0; addr < 20; ++addr)
        a.controller->write(addr, buf);
    for (int i = 0; i < 20; ++i)
        b.controller->read(99, buf);
    // Per access both write one full path (+- metadata); compare per
    // access data write counts.
    EXPECT_NEAR(static_cast<double>(a.controller->traffic().writes) /
                    static_cast<double>(a.controller->accessCount()),
                static_cast<double>(b.controller->traffic().writes) /
                    std::max<double>(1.0,
                        static_cast<double>(
                            b.controller->accessCount() -
                            b.controller->stashHits())),
                5.0);
}

} // namespace
} // namespace psoram
