/**
 * @file
 * PsOramController functional tests, parameterized over every design
 * variant of §5.1: read-after-write correctness against a reference
 * map, stash behaviour, and per-design traffic relations.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
smallConfig(DesignKind design, unsigned height = 5,
            std::uint64_t blocks = 48)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = height;
    config.bucket_slots = 4;
    config.num_blocks = blocks;
    config.stash_capacity = 64;
    config.wpq_entries = 96;
    config.cipher = CipherKind::Aes128Ctr;
    config.seed = 7;
    return config;
}

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    return version;
}

class PsOramDesigns : public ::testing::TestWithParam<DesignKind>
{
};

TEST_P(PsOramDesigns, WriteThenReadBack)
{
    System system = buildSystem(smallConfig(GetParam()));
    std::uint8_t in[kBlockDataBytes], out[kBlockDataBytes];
    payload(3, 1, in);
    system.controller->write(3, in);
    system.controller->read(3, out);
    EXPECT_EQ(std::memcmp(in, out, kBlockDataBytes), 0);
}

TEST_P(PsOramDesigns, UntouchedBlockReadsZero)
{
    System system = buildSystem(smallConfig(GetParam()));
    std::uint8_t out[kBlockDataBytes];
    std::memset(out, 0xFF, sizeof(out));
    system.controller->read(11, out);
    for (const auto b : out)
        EXPECT_EQ(b, 0);
}

TEST_P(PsOramDesigns, RandomWorkloadMatchesReferenceMap)
{
    System system = buildSystem(smallConfig(GetParam()));
    PsOramController &oram = *system.controller;
    Rng rng(11);
    std::map<BlockAddr, std::uint32_t> reference;
    std::uint8_t buf[kBlockDataBytes];

    for (int op = 0; op < 1500; ++op) {
        const BlockAddr addr = rng.nextBelow(48);
        if (rng.nextBool(0.5)) {
            const auto version = static_cast<std::uint32_t>(op + 1);
            payload(addr, version, buf);
            oram.write(addr, buf);
            reference[addr] = version;
        } else {
            oram.read(addr, buf);
            const auto it = reference.find(addr);
            EXPECT_EQ(versionOf(buf),
                      it == reference.end() ? 0u : it->second)
                << designName(GetParam()) << " op " << op << " addr "
                << addr;
        }
    }
}

TEST_P(PsOramDesigns, StashStaysBounded)
{
    System system = buildSystem(smallConfig(GetParam(), 6, 120));
    PsOramController &oram = *system.controller;
    Rng rng(13);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 2500; ++op) {
        payload(op, 1, buf);
        oram.write(rng.nextBelow(120), buf);
    }
    EXPECT_LT(oram.stash().peakSize(), system.config.stash_capacity);
    EXPECT_EQ(oram.stash().overflowEvents(), 0u);
}

TEST_P(PsOramDesigns, AccessesProduceTraffic)
{
    System system = buildSystem(smallConfig(GetParam()));
    std::uint8_t buf[kBlockDataBytes] = {};
    system.controller->write(1, buf);
    const TrafficCounts counts = system.controller->traffic();
    EXPECT_GT(counts.reads, 0u);
    EXPECT_GT(counts.writes, 0u);
}

TEST_P(PsOramDesigns, LatencyAdvancesClock)
{
    System system = buildSystem(smallConfig(GetParam()));
    std::uint8_t buf[kBlockDataBytes] = {};
    const OramAccessInfo info = system.controller->write(1, buf);
    EXPECT_GT(info.nvm_cycles, 0u);
    EXPECT_EQ(system.controller->nowCycles(), info.nvm_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, PsOramDesigns,
    ::testing::Values(DesignKind::Baseline, DesignKind::FullNvm,
                      DesignKind::FullNvmStt, DesignKind::NaivePsOram,
                      DesignKind::PsOram, DesignKind::RcrBaseline,
                      DesignKind::RcrPsOram),
    [](const auto &info) {
        std::string name = designName(info.param);
        std::string out;
        for (const char c : name)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

TEST(PsOramTrafficRelations, PathAccessTrafficPerDesign)
{
    // One full (non-stash-hit) access: Baseline does Z(L+1) reads and
    // writes; PS-ORAM adds only the dirty PosMap entries; Naive adds
    // Z(L+1) metadata writes; recursive designs add the PoM path.
    const unsigned per_path = TreeGeometry{5, 4}.blocksPerPath(); // 24

    const auto traffic_of = [&](DesignKind kind) {
        System system = buildSystem(smallConfig(kind));
        std::uint8_t buf[kBlockDataBytes] = {};
        system.controller->write(1, buf);
        return system.controller->traffic();
    };

    const TrafficCounts baseline = traffic_of(DesignKind::Baseline);
    EXPECT_EQ(baseline.reads, per_path);
    EXPECT_EQ(baseline.writes, per_path);

    const TrafficCounts ps = traffic_of(DesignKind::PsOram);
    EXPECT_EQ(ps.reads, per_path);
    EXPECT_GE(ps.writes, per_path);
    EXPECT_LE(ps.writes, per_path + 4); // + dirty PosMap entries

    const TrafficCounts naive = traffic_of(DesignKind::NaivePsOram);
    EXPECT_EQ(naive.reads, per_path);
    EXPECT_EQ(naive.writes, 2u * per_path); // + all-entry metadata

    const TrafficCounts fullnvm = traffic_of(DesignKind::FullNvm);
    EXPECT_EQ(fullnvm.reads, per_path);
    // Stash fills and PosMap updates are on-chip NVM writes.
    EXPECT_GT(fullnvm.writes, 2u * per_path);

    const TrafficCounts rcr = traffic_of(DesignKind::RcrBaseline);
    EXPECT_GT(rcr.reads, per_path); // + PoM path
    EXPECT_GT(rcr.writes, per_path);
}

TEST(PsOramBackups, BackupCreatedForDirtyReaccessedBlock)
{
    System system = buildSystem(smallConfig(DesignKind::PsOram));
    PsOramController &oram = *system.controller;
    std::uint8_t buf[kBlockDataBytes] = {};
    payload(5, 1, buf);
    oram.write(5, buf);
    // Evict block 5 out of the stash, then touch it again: the reload
    // must spawn a backup (step 4).
    for (BlockAddr a = 10; a < 40; ++a)
        oram.write(a, buf);
    const std::uint64_t backups_before = oram.backupsCreated();
    if (!oram.stash().find(5)) {
        payload(5, 2, buf);
        oram.write(5, buf);
        EXPECT_GT(oram.backupsCreated(), backups_before);
    }
}

TEST(PsOramBackups, NoBackupsLingerInStashAfterEviction)
{
    // Claim 2 (§4.6): backups are always written back to the read path,
    // so stash occupancy is unchanged by the backup mechanism.
    System system = buildSystem(smallConfig(DesignKind::PsOram, 6, 120));
    PsOramController &oram = *system.controller;
    Rng rng(17);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 1000; ++op) {
        oram.write(rng.nextBelow(120), buf);
        EXPECT_EQ(oram.stash().size(), oram.stash().liveSize())
            << "backup left in stash after access " << op;
    }
}

TEST(PsOramTempPosMap, PendingEntriesTrackStashResidents)
{
    System system = buildSystem(smallConfig(DesignKind::PsOram, 6, 120));
    PsOramController &oram = *system.controller;
    Rng rng(19);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 500; ++op)
        oram.write(rng.nextBelow(120), buf);
    // Every pending temporary-PosMap entry must correspond to a live
    // stash-resident block, and vice versa.
    EXPECT_EQ(oram.tempPosMap().size(), oram.stash().liveSize());
    for (std::size_t i = 0; i < oram.stash().size(); ++i) {
        const StashEntry &entry = oram.stash().at(i);
        if (entry.is_backup)
            continue;
        const auto pending = oram.tempPosMap().get(entry.addr);
        ASSERT_TRUE(pending.has_value());
        EXPECT_EQ(*pending, entry.path);
    }
}

TEST(PsOramCommitted, CommittedPathDiffersWhilePending)
{
    // Z = 2 buckets create enough eviction contention that some blocks
    // linger in the stash with pending remaps.
    SystemConfig config = smallConfig(DesignKind::PsOram, 6, 120);
    config.bucket_slots = 2;
    System system = buildSystem(config);
    PsOramController &oram = *system.controller;
    Rng rng(23);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < 300; ++op)
        oram.write(rng.nextBelow(120), buf);
    // For stash residents, the effective path equals the entry's path
    // (the temporary PosMap holds the pending remap).
    std::size_t pending_checked = 0;
    for (std::size_t i = 0; i < oram.stash().size(); ++i) {
        const StashEntry &entry = oram.stash().at(i);
        if (entry.is_backup)
            continue;
        EXPECT_EQ(oram.effectivePath(entry.addr), entry.path);
        ++pending_checked;
    }
    EXPECT_GT(pending_checked, 0u);
}

} // namespace
} // namespace psoram
