/**
 * @file
 * Pipelined engine tests (DESIGN.md §12): depth-1 identity, seeded
 * deterministic replay, value equivalence against the synchronous
 * engine, conflicting-path (same-leaf) ordering, and exhaustive crash
 * enumeration with pipeline_depth > 1 on unsharded and 1/2/4-shard
 * file-backed configs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/random.hh"
#include "nvm/fault_injector.hh"
#include "sim/crash_enumerator.hh"
#include "sim/engine.hh"
#include "sim/recovery_invariants.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
pipelineConfig(unsigned depth)
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 6;
    config.num_blocks = 120;
    config.stash_capacity = 64;
    config.seed = 17;
    config.pipeline_depth = depth;
    return config;
}

std::array<std::uint8_t, kBlockDataBytes>
pattern(std::uint8_t tag)
{
    std::array<std::uint8_t, kBlockDataBytes> data{};
    data.fill(tag);
    return data;
}

/** Deterministic request mix; returns each read's observed data. */
std::vector<std::array<std::uint8_t, kBlockDataBytes>>
runMix(OramEngine &engine, std::uint64_t seed, std::size_t ops,
       std::uint64_t num_blocks)
{
    Rng rng(seed);
    std::vector<std::array<std::uint8_t, kBlockDataBytes>> reads;
    for (std::size_t op = 0; op < ops; ++op) {
        const BlockAddr addr = rng.nextBelow(num_blocks);
        if (rng.nextBool(0.5)) {
            const auto data =
                pattern(static_cast<std::uint8_t>(rng.nextBelow(256)));
            engine.submitWrite(addr, data.data());
        } else {
            engine.submitRead(
                addr, [&reads](const OramEngine::Completion &c) {
                    reads.push_back(c.data);
                });
        }
    }
    engine.drain();
    return reads;
}

TEST(Pipeline, DepthOneBuildsNoPipelineMachinery)
{
    System system = buildSystem(pipelineConfig(1));
    EXPECT_FALSE(system.controller->pipelineSupported());
    EXPECT_EQ(system.controller->subtreeCache(), nullptr);
    EXPECT_EQ(system.controller->writeBehind(), nullptr);
    OramEngine engine(*system.controller);
    EXPECT_EQ(engine.pipelineDepth(), 1u);
}

TEST(Pipeline, DepthFourResolvesWhenSupported)
{
    System system = buildSystem(pipelineConfig(4));
    EXPECT_TRUE(system.controller->pipelineSupported());
    ASSERT_NE(system.controller->subtreeCache(), nullptr);
    ASSERT_NE(system.controller->writeBehind(), nullptr);
    OramEngine engine(*system.controller);
    EXPECT_EQ(engine.pipelineDepth(), 4u);
}

/** Non-pipelined designs clamp to the synchronous engine even when a
 *  depth is configured (recursive shadow-snapshots and the eager
 *  non-persistent PosMap both preclude in-flight remaps). */
TEST(Pipeline, UnsupportedDesignsStaySynchronous)
{
    SystemConfig config = pipelineConfig(4);
    config.design = DesignKind::RcrPsOram;
    System system = buildSystem(config);
    EXPECT_FALSE(system.controller->pipelineSupported());
    OramEngine engine(*system.controller);
    EXPECT_EQ(engine.pipelineDepth(), 1u);
}

TEST(Pipeline, DeterministicReplay)
{
    // Same seed + same depth => identical read results and identical
    // engine stats, run-to-run: every RNG draw happens at stageBegin on
    // the drive thread in ticket order, so fetch-thread scheduling
    // cannot perturb the protocol.
    std::vector<std::array<std::uint8_t, kBlockDataBytes>> first;
    std::uint64_t first_physical = 0;
    {
        System system = buildSystem(pipelineConfig(4));
        OramEngine engine(*system.controller);
        first = runMix(engine, 99, 400, 120);
        first_physical = engine.stats().physical_accesses.value();
    }
    for (int replay = 0; replay < 2; ++replay) {
        System system = buildSystem(pipelineConfig(4));
        OramEngine engine(*system.controller);
        const auto reads = runMix(engine, 99, 400, 120);
        EXPECT_EQ(reads, first);
        EXPECT_EQ(engine.stats().physical_accesses.value(),
                  first_physical);
    }
}

TEST(Pipeline, MatchesSynchronousValues)
{
    // Depth 4 is not traffic-identical to depth 1 (legal divergence:
    // in-flight accesses change stash-hit patterns), but every read
    // must observe exactly the values the synchronous engine produces.
    System sync_system = buildSystem(pipelineConfig(1));
    OramEngine sync_engine(*sync_system.controller);
    const auto sync_reads = runMix(sync_engine, 1234, 500, 120);

    System piped_system = buildSystem(pipelineConfig(4));
    OramEngine piped_engine(*piped_system.controller);
    const auto piped_reads = runMix(piped_engine, 1234, 500, 120);

    EXPECT_EQ(piped_reads, sync_reads);
}

TEST(Pipeline, ConflictingPathOrdering)
{
    // Hammer a handful of addresses (ensuring same-leaf, same-path
    // conflicts and plenty of conflict-defer hits): every read must
    // observe the latest preceding write in submit order, and
    // completions must arrive in submit order.
    System system = buildSystem(pipelineConfig(4));
    OramEngine engine(*system.controller);

    std::map<BlockAddr, std::uint8_t> shadow;
    std::vector<OramEngine::RequestId> completion_order;
    Rng rng(7);
    std::uint8_t next_tag = 1;
    for (std::size_t op = 0; op < 600; ++op) {
        const BlockAddr addr = rng.nextBelow(5); // 5 hot addresses
        if (rng.nextBool(0.5)) {
            const std::uint8_t tag = next_tag++;
            shadow[addr] = tag;
            const auto data = pattern(tag);
            engine.submitWrite(
                addr, data.data(),
                [&completion_order](const OramEngine::Completion &c) {
                    completion_order.push_back(c.id);
                });
        } else {
            const std::uint8_t expect_tag =
                shadow.count(addr) ? shadow[addr] : 0;
            engine.submitRead(
                addr,
                [&completion_order,
                 expect_tag](const OramEngine::Completion &c) {
                    completion_order.push_back(c.id);
                    EXPECT_EQ(c.data[0], expect_tag);
                });
        }
    }
    engine.drain();

    ASSERT_EQ(completion_order.size(), 600u);
    for (std::size_t i = 1; i < completion_order.size(); ++i)
        EXPECT_LT(completion_order[i - 1], completion_order[i]);

    // Balanced pins: every staged access released its path.
    ASSERT_NE(system.controller->subtreeCache(), nullptr);
    EXPECT_EQ(system.controller->subtreeCache()->totalPins(), 0u);
}

TEST(Pipeline, ExhaustiveCrashEnumerationDepthTwo)
{
    // Every persist boundary of a small pipelined trace: crash,
    // recover, check invariants, then verify the recovered ORAM works.
    CrashEnumConfig config;
    config.system = pipelineConfig(2);
    config.system.tree_height = 4;
    config.system.num_blocks = 40;
    config.system.wpq_entries = 8;
    config.system.temp_posmap_entries = 16;
    config.trace = makeCrashTrace(5, 24, config.system.num_blocks);
    config.post_recovery_ops = 32;
    const CrashEnumSummary summary = enumerateCrashPoints(config);
    EXPECT_GT(summary.total_boundaries, 0u);
    for (const CrashPointFailure &f : summary.failures)
        for (const std::string &v : f.violations)
            ADD_FAILURE() << v;
    EXPECT_TRUE(summary.ok()) << summary.describe();
}

/** Sharded pipelined crash: fault one shard at a fixed boundary while
 *  per-shard engines keep depth-4 windows in flight over file-backed
 *  devices, recover the victim, and check every shard. */
void
shardedPipelinedCrash(unsigned num_shards)
{
    const std::string backing =
        "pipeline_crash_" + std::to_string(num_shards) + ".img";
    ShardedSystemConfig config;
    config.base = pipelineConfig(4);
    config.base.tree_height = 5;
    config.base.num_blocks = 80;
    config.base.wpq_entries = 8;
    config.base.backing_file = backing;
    config.sharding.num_shards = num_shards;
    const auto scrub = [&] {
        std::remove(backing.c_str());
        std::remove((backing + ".tmp").c_str());
        for (unsigned s = 0; s < num_shards; ++s) {
            const std::string f = backing + ".shard" + std::to_string(s);
            std::remove(f.c_str());
            std::remove((f + ".tmp").c_str());
        }
    };
    scrub();

    ShardedSystem sharded = buildShardedSystem(config);
    std::vector<RecoveryOracle> oracles(sharded.numShards());
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        sharded.controller(s).setCommitObserver(oracles[s].observer());
        sharded.shards[s].setRebindHook(
            [&oracles, s](PsOramController &ctrl) {
                ctrl.setCommitObserver(oracles[s].observer());
            });
    }

    const unsigned victim = num_shards / 2;
    FaultInjector injector;
    sharded.shards[victim].attachFaultInjector(&injector);
    injector.armAt(40);

    const std::vector<TraceOp> trace =
        makeCrashTrace(11, 96, sharded.router.totalBlocks(), 0.7);
    bool crashed = false;
    std::uint8_t buf[kBlockDataBytes];
    {
        EngineConfig engine_config;
        engine_config.record_completions = false;
        std::vector<std::unique_ptr<OramEngine>> engines;
        for (unsigned s = 0; s < sharded.numShards(); ++s) {
            ASSERT_TRUE(sharded.controller(s).pipelineSupported());
            engines.push_back(std::make_unique<OramEngine>(
                sharded.controller(s), engine_config));
        }
        try {
            for (const TraceOp &op : trace) {
                const ShardSlot slot = sharded.router.route(op.addr);
                if (op.is_write) {
                    stampPayload(slot.local, op.version, buf);
                    oracles[slot.shard].latest[slot.local] = op.version;
                    engines[slot.shard]->submitWrite(slot.local, buf);
                } else {
                    engines[slot.shard]->submitRead(slot.local);
                }
            }
            for (auto &engine : engines)
                engine->drain();
        } catch (const InjectedFault &) {
            crashed = true;
        }
    }
    injector.disarm();
    ASSERT_TRUE(crashed) << "armed boundary never reached";

    sharded.recoverShard(victim);
    for (unsigned s = 0; s < sharded.numShards(); ++s)
        for (const std::string &v :
             checkRecoveryInvariants(sharded.shards[s], oracles[s]))
            ADD_FAILURE() << "shard " << s << ": " << v;

    // The recovered stack must still serve verified traffic — again
    // through pipelined engines.
    {
        EngineConfig engine_config;
        std::vector<std::unique_ptr<OramEngine>> engines;
        for (unsigned s = 0; s < sharded.numShards(); ++s)
            engines.push_back(std::make_unique<OramEngine>(
                sharded.controller(s), engine_config));
        Rng rng(23);
        std::map<BlockAddr, std::uint32_t> post;
        for (std::size_t op = 0; op < 64; ++op) {
            const BlockAddr addr =
                rng.nextBelow(sharded.router.totalBlocks());
            const ShardSlot slot = sharded.router.route(addr);
            if (rng.nextBool(0.5)) {
                const auto version =
                    static_cast<std::uint32_t>(3'000'000 + op);
                stampPayload(slot.local, version, buf);
                engines[slot.shard]->submitWrite(slot.local, buf);
                post[addr] = version;
            } else if (post.count(addr)) {
                const std::uint32_t expect = post[addr];
                engines[slot.shard]->submitRead(
                    slot.local,
                    [expect](const OramEngine::Completion &c) {
                        EXPECT_EQ(payloadVersion(c.data.data()),
                                  expect);
                    });
            }
        }
        for (auto &engine : engines)
            engine->drain();
    }
    scrub();
}

TEST(Pipeline, ShardedFileBackedCrashOneShard)
{
    shardedPipelinedCrash(1);
}

TEST(Pipeline, ShardedFileBackedCrashTwoShards)
{
    shardedPipelinedCrash(2);
}

TEST(Pipeline, ShardedFileBackedCrashFourShards)
{
    shardedPipelinedCrash(4);
}

} // namespace
} // namespace psoram
