/**
 * @file
 * Differential test: the crash-consistent PS-ORAM controller and the
 * classic Path ORAM controller implement the *same* logical array.
 *
 * Both stacks run the identical 10k-access random trace and must agree
 * byte-for-byte on every read — with each other and with a reference
 * map. Any divergence (a remap bug, a stale stash merge, a backup
 * resurfacing as current data) shows up as the first differing access.
 * The sweep covers the non-recursive and recursive persistent designs
 * plus a sharded deployment driven through the router.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "nvm/device.hh"
#include "oram/controller.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

constexpr std::uint64_t kBlocks = 96;
constexpr std::size_t kOps = 10000;

SystemConfig
psConfig(DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 6;
    config.bucket_slots = 4;
    config.num_blocks = kBlocks;
    config.stash_capacity = 96;
    config.wpq_entries = 96;
    config.cipher = CipherKind::FastStream;
    config.seed = 2024;
    return config;
}

PathOramParams
plainParams()
{
    PathOramParams params;
    params.layout.geometry = TreeGeometry{6, 4};
    params.layout.base = 0;
    params.num_blocks = kBlocks;
    params.stash_capacity = 96;
    params.cipher = CipherKind::FastStream;
    params.seed = 2024;
    return params;
}

/** Fill @p out with a pattern unique to (addr, op). */
void
fillPattern(BlockAddr addr, std::size_t op, std::uint8_t *out)
{
    for (std::size_t i = 0; i < kBlockDataBytes; ++i)
        out[i] = static_cast<std::uint8_t>(
            (addr * 131 + op * 31 + i * 7) & 0xFF);
}

void
runDifferential(DesignKind design)
{
    System ps = buildSystem(psConfig(design));
    NvmDevice plain_device(pcmTimings(), 1, 8, 64ULL << 20);
    PathOramController plain(plainParams(), plain_device);
    std::unordered_map<BlockAddr, std::vector<std::uint8_t>> reference;

    Rng rng(555);
    std::uint8_t in[kBlockDataBytes];
    std::uint8_t ps_out[kBlockDataBytes];
    std::uint8_t plain_out[kBlockDataBytes];
    for (std::size_t op = 0; op < kOps; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        if (rng.nextBool(0.5)) {
            fillPattern(addr, op, in);
            ps.controller->write(addr, in);
            plain.write(addr, in);
            reference[addr].assign(in, in + kBlockDataBytes);
        } else {
            ps.controller->read(addr, ps_out);
            plain.read(addr, plain_out);
            ASSERT_EQ(std::memcmp(ps_out, plain_out, kBlockDataBytes),
                      0)
                << designName(design)
                << " diverged from Path ORAM at op " << op << " addr "
                << addr;
            if (const auto it = reference.find(addr);
                it != reference.end())
                ASSERT_EQ(std::memcmp(ps_out, it->second.data(),
                                      kBlockDataBytes),
                          0)
                    << designName(design)
                    << " diverged from the reference at op " << op
                    << " addr " << addr;
        }
    }
}

TEST(Differential, PsOramMatchesPathOram)
{
    runDifferential(DesignKind::PsOram);
}

TEST(Differential, NaivePsOramMatchesPathOram)
{
    runDifferential(DesignKind::NaivePsOram);
}

TEST(Differential, RcrPsOramMatchesPathOram)
{
    runDifferential(DesignKind::RcrPsOram);
}

TEST(Differential, IntegrityTreeMatchesIntegrityOff)
{
    // The integrity layer must be functionally and *obliviously*
    // transparent: with the same seed and trace, integrity=tree and
    // integrity=off serve byte-identical plaintexts and touch the
    // identical leaf sequence (seal/verify consumes no randomness and
    // alters no control flow). A divergence in the leaves would mean
    // the authenticated records leak through the access pattern; a
    // divergence in the data would mean seal/verify corrupted the
    // wire format.
    SystemConfig off_config = psConfig(DesignKind::PsOram);
    SystemConfig tree_config = off_config;
    tree_config.integrity = IntegrityMode::Tree;
    System off = buildSystem(off_config);
    System tree = buildSystem(tree_config);

    Rng rng(557);
    std::uint8_t in[kBlockDataBytes];
    std::uint8_t off_out[kBlockDataBytes];
    std::uint8_t tree_out[kBlockDataBytes];
    for (std::size_t op = 0; op < kOps; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        OramAccessInfo off_info;
        OramAccessInfo tree_info;
        if (rng.nextBool(0.5)) {
            fillPattern(addr, op, in);
            off_info = off.controller->write(addr, in);
            tree_info = tree.controller->write(addr, in);
        } else {
            off_info = off.controller->read(addr, off_out);
            tree_info = tree.controller->read(addr, tree_out);
            ASSERT_EQ(std::memcmp(off_out, tree_out, kBlockDataBytes),
                      0)
                << "integrity=tree diverged from integrity=off at op "
                << op << " addr " << addr;
        }
        ASSERT_EQ(off_info.leaf, tree_info.leaf)
            << "integrity=tree leaked through the access pattern at "
            << "op " << op << " addr " << addr;
        ASSERT_EQ(off_info.stash_hit, tree_info.stash_hit)
            << "integrity=tree changed stash behavior at op " << op
            << " addr " << addr;
    }
}

TEST(Differential, ShardedPsOramMatchesPathOram)
{
    // 4-shard PS-ORAM vs one plain Path ORAM over the same logical
    // address space, driven through the router.
    ShardedSystemConfig config;
    config.base = psConfig(DesignKind::PsOram);
    config.sharding.num_shards = 4;
    ShardedSystem sharded = buildShardedSystem(config);

    NvmDevice plain_device(pcmTimings(), 1, 8, 64ULL << 20);
    PathOramController plain(plainParams(), plain_device);

    Rng rng(556);
    std::uint8_t in[kBlockDataBytes];
    std::uint8_t ps_out[kBlockDataBytes];
    std::uint8_t plain_out[kBlockDataBytes];
    for (std::size_t op = 0; op < kOps; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const ShardSlot slot = sharded.router.route(addr);
        if (rng.nextBool(0.5)) {
            fillPattern(addr, op, in);
            sharded.controller(slot.shard).write(slot.local, in);
            plain.write(addr, in);
        } else {
            sharded.controller(slot.shard).read(slot.local, ps_out);
            plain.read(addr, plain_out);
            ASSERT_EQ(std::memcmp(ps_out, plain_out, kBlockDataBytes),
                      0)
                << "sharded PS-ORAM diverged at op " << op << " addr "
                << addr << " (shard " << slot.shard << ")";
        }
    }
}

} // namespace
} // namespace psoram
